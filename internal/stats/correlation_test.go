package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectPositive(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
}

func TestPearsonPerfectNegative(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{8, 6, 4, 2}
	r, _ := Pearson(xs, ys)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("Pearson with constant series = %v, want 0", r)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestPearsonShortSeries(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrShortSeries {
		t.Fatalf("expected ErrShortSeries, got %v", err)
	}
}

func TestSpearmanMonotonicNonlinear(t *testing.T) {
	// y = x^3 is monotonic: Spearman must be exactly 1 even though
	// Pearson would not be.
	xs := []float64{-3, -2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x * x
	}
	res, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Rho, 1, 1e-12) {
		t.Fatalf("Spearman rho = %v, want 1", res.Rho)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("p-value for perfect correlation = %v", res.PValue)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic textbook example with ties.
	xs := []float64{106, 100, 86, 101, 99, 103, 97, 113, 112, 110}
	ys := []float64{7, 27, 2, 50, 28, 29, 20, 12, 6, 17}
	res, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Rho, -0.17575757, 1e-6) {
		t.Fatalf("Spearman rho = %v, want -0.1758", res.Rho)
	}
	if res.N != 10 {
		t.Fatalf("N = %d", res.N)
	}
}

func TestSpearmanSymmetric(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	ys := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	a, _ := Spearman(xs, ys)
	b, _ := Spearman(ys, xs)
	if !almostEqual(a.Rho, b.Rho, 1e-12) {
		t.Fatalf("Spearman not symmetric: %v vs %v", a.Rho, b.Rho)
	}
}

func TestSpearmanIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	res, _ := Spearman(xs, ys)
	if math.Abs(res.Rho) > 0.05 {
		t.Fatalf("independent series rho = %v", res.Rho)
	}
	if res.PValue < 0.01 {
		t.Fatalf("independent series p-value = %v, should not be significant", res.PValue)
	}
}

func TestSpearmanStrongCorrelationSignificant(t *testing.T) {
	// Noisy monotone relation over many points: rho high, p tiny —
	// the regime of the paper's Figure 7 (rho=0.9181, p=2.6e-167).
	rng := rand.New(rand.NewSource(2))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = float64(i) + 50*rng.NormFloat64()
	}
	res, _ := Spearman(xs, ys)
	if res.Rho < 0.9 {
		t.Fatalf("rho = %v, want > 0.9", res.Rho)
	}
	if res.PValue > 1e-100 {
		t.Fatalf("p-value = %v, want astronomically small", res.PValue)
	}
}

// Property: Spearman rho is always within [-1, 1] and symmetric.
func TestQuickSpearmanBounded(t *testing.T) {
	f := func(pairs []struct{ X, Y int8 }) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			xs[i] = float64(p.X)
			ys[i] = float64(p.Y)
		}
		res, err := Spearman(xs, ys)
		if err != nil {
			return false
		}
		rev, err := Spearman(ys, xs)
		if err != nil {
			return false
		}
		return res.Rho >= -1 && res.Rho <= 1 &&
			almostEqual(res.Rho, rev.Rho, 1e-9) &&
			res.PValue >= 0 && res.PValue <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTTwoSidedP(t *testing.T) {
	// t=0 -> p=1; large |t| -> p->0; df<=0 -> 1.
	if p := StudentTTwoSidedP(0, 10); !almostEqual(p, 1, 1e-9) {
		t.Fatalf("p(t=0) = %v", p)
	}
	if p := StudentTTwoSidedP(100, 50); p > 1e-20 {
		t.Fatalf("p(t=100) = %v", p)
	}
	if p := StudentTTwoSidedP(1, 0); p != 1 {
		t.Fatalf("p(df=0) = %v", p)
	}
	// Known value: t=2.228, df=10 gives p ~= 0.05.
	if p := StudentTTwoSidedP(2.228, 10); !almostEqual(p, 0.05, 0.001) {
		t.Fatalf("p(2.228, 10) = %v, want ~0.05", p)
	}
}

func TestRegularizedIncompleteBetaEdges(t *testing.T) {
	if got := RegularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := RegularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
	// I_x(1,1) = x (uniform distribution).
	if got := RegularizedIncompleteBeta(1, 1, 0.42); !almostEqual(got, 0.42, 1e-9) {
		t.Fatalf("I_0.42(1,1) = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	a, b, x := 2.5, 4.0, 0.3
	lhs := RegularizedIncompleteBeta(a, b, x)
	rhs := 1 - RegularizedIncompleteBeta(b, a, 1-x)
	if !almostEqual(lhs, rhs, 1e-9) {
		t.Fatalf("symmetry violated: %v vs %v", lhs, rhs)
	}
}
