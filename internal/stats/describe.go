package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// It backs every "CDF of ..." figure in the paper (Figures 1, 2, 3, 5).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]) using linear
// interpolation between order statistics (the "R-7" method).
func (e *ECDF) Quantile(q float64) float64 {
	return quantileSorted(e.sorted, q)
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns the step points (x, P(X<=x)) at each distinct value,
// suitable for plotting or serializing the CDF series.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j+1 < n && e.sorted[j+1] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, ps
}

// Quantile returns the q-th quantile of xs without building an ECDF.
func Quantile(xs []float64, q float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxplotStats is the five-number summary plus mean used by the
// paper's boxplot figures (Figures 4, 6, 7): orange line = median,
// green triangle = mean, whiskers at 1.5 IQR, outliers excluded.
type BoxplotStats struct {
	N           int
	Mean        float64
	Median      float64
	Q1, Q3      float64
	IQR         float64
	LoWhisker   float64 // smallest value >= Q1 - 1.5 IQR
	HiWhisker   float64 // largest value <= Q3 + 1.5 IQR
	NumOutliers int
}

// Boxplot computes the summary for xs. An empty input yields a
// zero-valued summary with N == 0.
func Boxplot(xs []float64) BoxplotStats {
	if len(xs) == 0 {
		return BoxplotStats{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	b := BoxplotStats{
		N:      len(s),
		Mean:   Mean(s),
		Median: quantileSorted(s, 0.5),
		Q1:     quantileSorted(s, 0.25),
		Q3:     quantileSorted(s, 0.75),
	}
	b.IQR = b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*b.IQR
	hiFence := b.Q3 + 1.5*b.IQR
	b.LoWhisker, b.HiWhisker = s[0], s[len(s)-1]
	for _, v := range s {
		if v >= loFence {
			b.LoWhisker = v
			break
		}
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] <= hiFence {
			b.HiWhisker = s[i]
			break
		}
	}
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.NumOutliers++
		}
	}
	return b
}

// Histogram counts xs into nbins equal-width bins over [min, max].
// Values outside the range clamp into the first/last bin. Returns the
// bin edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, min, max float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || max <= min {
		return nil, nil
	}
	edges = make([]float64, nbins+1)
	width := (max - min) / float64(nbins)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, v := range xs {
		b := int((v - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}
