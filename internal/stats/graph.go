package stats

import "sort"

// Graph is a simple undirected graph over string-named vertices, used
// to turn pairwise "strongly correlated" engine relations (ρ > 0.8)
// into the engine groups of Figures 11–12 and Tables 4–8.
type Graph struct {
	adj map[string]map[string]float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[string]map[string]float64)}
}

// AddVertex ensures v exists in the graph.
func (g *Graph) AddVertex(v string) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[string]float64)
	}
}

// AddEdge adds an undirected weighted edge (the correlation
// coefficient) between a and b, creating vertices as needed.
// Self-loops are ignored.
func (g *Graph) AddEdge(a, b string, weight float64) {
	if a == b {
		return
	}
	g.AddVertex(a)
	g.AddVertex(b)
	g.adj[a][b] = weight
	g.adj[b][a] = weight
}

// HasEdge reports whether an edge exists between a and b.
func (g *Graph) HasEdge(a, b string) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Weight returns the edge weight and whether the edge exists.
func (g *Graph) Weight(a, b string) (float64, bool) {
	w, ok := g.adj[a][b]
	return w, ok
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Vertices returns all vertices in sorted order.
func (g *Graph) Vertices() []string {
	vs := make([]string, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Neighbors returns the sorted neighbors of v.
func (g *Graph) Neighbors(v string) []string {
	ns := make([]string, 0, len(g.adj[v]))
	for n := range g.adj[v] {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Edge is an undirected weighted edge with a canonical A < B ordering.
type Edge struct {
	A, B   string
	Weight float64
}

// Edges returns all edges sorted by descending weight, then by name.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for a, nbrs := range g.adj {
		for b, w := range nbrs {
			if a < b {
				es = append(es, Edge{A: a, B: b, Weight: w})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
	return es
}

// ConnectedComponents returns the vertex sets of each connected
// component, each sorted, with components ordered by decreasing size
// then lexicographically by first member. These are exactly the
// "groups of highly correlated engines" in Tables 4–8.
func (g *Graph) ConnectedComponents() [][]string {
	seen := make(map[string]bool, len(g.adj))
	var comps [][]string
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		// Iterative DFS.
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, n := range g.Neighbors(v) {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}
