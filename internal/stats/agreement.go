package stats

// Cohen's kappa: chance-corrected agreement between two binary
// raters. Used as a robustness check on the Spearman-based engine
// correlation of §7.2 — if the strongly correlated groups persist
// under a different agreement statistic, they are properties of the
// engines, not of the metric.

// Confusion is the 2×2 agreement table of two binary raters:
// Confusion[i][j] counts observations rated i by A and j by B
// (0 = negative, 1 = positive).
type Confusion [2][2]int

// Add counts one paired observation.
func (c *Confusion) Add(a, b bool) {
	i, j := 0, 0
	if a {
		i = 1
	}
	if b {
		j = 1
	}
	c[i][j]++
}

// Total returns the number of paired observations.
func (c Confusion) Total() int {
	return c[0][0] + c[0][1] + c[1][0] + c[1][1]
}

// ObservedAgreement returns the raw agreement fraction.
func (c Confusion) ObservedAgreement() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c[0][0]+c[1][1]) / float64(n)
}

// Kappa returns Cohen's κ. A table where either rater is constant has
// undefined chance correction; by convention we return 0 then
// (matching how the correlation analyses treat constant engine
// columns).
func (c Confusion) Kappa() float64 {
	n := float64(c.Total())
	if n == 0 {
		return 0
	}
	po := c.ObservedAgreement()
	aPos := float64(c[1][0]+c[1][1]) / n
	bPos := float64(c[0][1]+c[1][1]) / n
	pe := aPos*bPos + (1-aPos)*(1-bPos)
	if pe >= 1 {
		// Both raters constant (same class): agreement is trivial.
		return 0
	}
	return (po - pe) / (1 - pe)
}
