package stats

import (
	"math/rand"
	"testing"
)

func randomSeries(n int, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		// Ternary values mimic the verdict columns of §7.2.
		xs[i] = float64(rng.Intn(3) - 1)
		ys[i] = float64(rng.Intn(3) - 1)
	}
	return xs, ys
}

func BenchmarkRanks(b *testing.B) {
	xs, _ := randomSeries(40_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Ranks(xs)
	}
}

func BenchmarkSpearman(b *testing.B) {
	xs, ys := randomSeries(40_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPearsonOnRanks(b *testing.B) {
	xs, ys := randomSeries(40_000, 3)
	rx, ry := Ranks(xs), Ranks(ys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pearson(rx, ry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoxplot(b *testing.B) {
	xs, _ := randomSeries(100_000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Boxplot(xs)
	}
}

func BenchmarkECDF(b *testing.B) {
	xs, _ := randomSeries(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewECDF(xs)
	}
}
