package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionAddTotal(t *testing.T) {
	var c Confusion
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	c.Add(true, true)
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
	if c[1][1] != 2 || c[1][0] != 1 || c[0][1] != 1 || c[0][0] != 1 {
		t.Fatalf("table = %v", c)
	}
}

func TestKappaPerfectAgreement(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, true)
		c.Add(false, false)
	}
	if got := c.Kappa(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("kappa = %v, want 1", got)
	}
}

func TestKappaPerfectDisagreement(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, false)
		c.Add(false, true)
	}
	if got := c.Kappa(); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("kappa = %v, want -1", got)
	}
}

func TestKappaKnownValue(t *testing.T) {
	// Classic textbook example: po = 0.7, pe = 0.5 -> kappa = 0.4.
	c := Confusion{{20, 10}, {5, 15}}
	// po = 35/50 = 0.7; aPos = 20/50=0.4, bPos = 25/50=0.5
	// pe = 0.4*0.5 + 0.6*0.5 = 0.5; kappa = 0.2/0.5 = 0.4.
	if got := c.Kappa(); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("kappa = %v, want 0.4", got)
	}
}

func TestKappaConstantRater(t *testing.T) {
	var c Confusion
	for i := 0; i < 10; i++ {
		c.Add(true, true)
	}
	if got := c.Kappa(); got != 0 {
		t.Fatalf("constant raters kappa = %v, want 0 by convention", got)
	}
	if c.ObservedAgreement() != 1 {
		t.Fatal("observed agreement should be 1")
	}
}

func TestKappaEmpty(t *testing.T) {
	var c Confusion
	if c.Kappa() != 0 || c.ObservedAgreement() != 0 {
		t.Fatal("empty table should yield zeros")
	}
}

// Property: kappa is bounded in [-1, 1] and symmetric under swapping
// the raters.
func TestQuickKappaBoundedSymmetric(t *testing.T) {
	f := func(a, b, c2, d uint8) bool {
		c := Confusion{{int(a), int(b)}, {int(c2), int(d)}}
		swapped := Confusion{{int(a), int(c2)}, {int(b), int(d)}}
		k := c.Kappa()
		if math.IsNaN(k) || k < -1-1e-9 || k > 1+1e-9 {
			return false
		}
		return almostEqual(k, swapped.Kappa(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
