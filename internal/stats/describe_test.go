package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasic(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {3, 0.8}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if got := e.At(5); got != 0 {
		t.Fatalf("empty ECDF At = %v", got)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 3, 3, 3})
	xs, ps := e.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{2.0 / 6, 3.0 / 6, 1}
	if len(xs) != 3 {
		t.Fatalf("Points xs = %v", xs)
	}
	for i := range wantX {
		if xs[i] != wantX[i] || !almostEqual(ps[i], wantP[i], 1e-12) {
			t.Fatalf("Points = %v %v, want %v %v", xs, ps, wantX, wantP)
		}
	}
}

// Property: ECDF is monotone non-decreasing and ends at 1.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e := NewECDF(xs)
		prev := 0.0
		for x := -130.0; x <= 130; x += 1 {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return almostEqual(e.At(127), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("median = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestBoxplotKnown(t *testing.T) {
	// 1..11 plus an outlier at 100.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b := Boxplot(xs)
	if b.N != 12 {
		t.Fatalf("N = %d", b.N)
	}
	if !almostEqual(b.Median, 6.5, 1e-12) {
		t.Fatalf("median = %v", b.Median)
	}
	if b.NumOutliers != 1 {
		t.Fatalf("outliers = %d, want 1 (the 100)", b.NumOutliers)
	}
	if b.HiWhisker == 100 {
		t.Fatal("outlier included in whisker")
	}
	if b.LoWhisker != 1 {
		t.Fatalf("low whisker = %v", b.LoWhisker)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	b := Boxplot(nil)
	if b.N != 0 {
		t.Fatalf("empty boxplot N = %d", b.N)
	}
}

// Property: boxplot invariants — Q1 <= median <= Q3, whiskers inside
// data range, whiskers within fences.
func TestQuickBoxplotInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		b := Boxplot(xs)
		if b.Q1 > b.Median || b.Median > b.Q3 {
			return false
		}
		if b.LoWhisker > b.HiWhisker {
			return false
		}
		return b.LoWhisker >= b.Q1-1.5*b.IQR-1e-9 && b.HiWhisker <= b.Q3+1.5*b.IQR+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.5, 1.5, 1.6, 2.5, 9.9, -3, 42}, 0, 10, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("shape: %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram lost values: total = %d", total)
	}
	if counts[0] != 3 { // 0.5, 1.5, 1.6 and the clamped -3 => actually 4
		// -3 clamps into bin 0, so bin 0 holds 0.5, 1.5, 1.6, -3.
		if counts[0] != 4 {
			t.Fatalf("bin 0 = %d", counts[0])
		}
	}
	if counts[4] != 2 { // 9.9 and the clamped 42
		t.Fatalf("bin 4 = %d", counts[4])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if e, c := Histogram([]float64{1}, 5, 5, 3); e != nil || c != nil {
		t.Fatal("degenerate range should return nil")
	}
	if e, c := Histogram([]float64{1}, 0, 1, 0); e != nil || c != nil {
		t.Fatal("zero bins should return nil")
	}
}
