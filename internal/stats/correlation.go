package stats

import (
	"errors"
	"math"
)

// ErrShortSeries is returned when a correlation is requested over
// fewer than two paired observations.
var ErrShortSeries = errors.New("stats: need at least 2 paired observations")

// Pearson returns the Pearson product-moment correlation of the paired
// series xs, ys. It returns 0 with nil error when either series is
// constant (correlation undefined; the analyses treat constant engine
// columns as uncorrelated).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrShortSeries
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp tiny floating-point overshoot.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// SpearmanResult carries a Spearman rank correlation with its
// two-sided significance via the t-approximation, the test the paper
// uses for both Figure 7 (difference vs. interval, ρ = 0.9181,
// p = 2.6e-167) and the engine-correlation study of §7.2.
type SpearmanResult struct {
	Rho    float64 // rank correlation in [-1, 1]
	PValue float64 // two-sided p under t-approximation
	N      int     // number of paired observations
}

// Spearman computes the tie-corrected Spearman rank correlation of the
// paired series xs, ys: the Pearson correlation of their fractional
// ranks.
func Spearman(xs, ys []float64) (SpearmanResult, error) {
	if len(xs) != len(ys) {
		return SpearmanResult{}, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return SpearmanResult{}, ErrShortSeries
	}
	rho, err := Pearson(Ranks(xs), Ranks(ys))
	if err != nil {
		return SpearmanResult{}, err
	}
	return SpearmanResult{Rho: rho, PValue: spearmanP(rho, n), N: n}, nil
}

// spearmanP returns the two-sided p-value for rho with n observations
// using the Student's t approximation t = rho*sqrt((n-2)/(1-rho^2)).
func spearmanP(rho float64, n int) float64 {
	if n < 3 {
		return 1
	}
	if math.Abs(rho) >= 1 {
		return 0
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	return StudentTTwoSidedP(t, float64(n-2))
}
