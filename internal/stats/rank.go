// Package stats implements the statistical machinery the paper's
// analyses rely on: tie-corrected ranking, Spearman and Pearson
// correlation with significance tests, empirical CDFs, quantiles,
// five-number boxplot summaries, histograms, and the undirected graph
// with connected components used to extract strongly correlated
// engine groups (Figures 11–12, Tables 4–8).
//
// Everything is implemented from the standard library only.
package stats

import "sort"

// Ranks returns the fractional ranks of xs (1-based, average rank for
// ties), the convention required for a tie-corrected Spearman
// coefficient. The input is not modified.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j] (1-based ranks).
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, v := range xs {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(xs))
}
