// Package loadgen is the open-loop sustained-load generator behind
// `vtbench soak`: it schedules request arrivals on a fixed timeline
// derived only from the configuration — never from response latency —
// and measures each request's latency from its *scheduled* start, so
// a stalled server inflates the recorded tail instead of silently
// slowing the offered load.
//
// Why open loop: a closed-loop generator (issue, wait, issue) is a
// feedback controller — when the target stalls, the generator stops
// offering load, and the stall's queueing cost disappears from the
// record. This is the coordinated-omission trap; real submitters (the
// paper's millions of users, Maat's heavy-tailed feed producers) do
// not politely pause when VT is slow. Here, arrival i's timestamp is
// a pure function of (rate schedule, i); a worker that falls behind
// fires late, and the lateness is charged to every affected request.
//
// Workload shape:
//
//   - Arrivals are split round-robin across Clients independent
//     lanes; each lane sleeps until its next scheduled instant. A
//     slow response delays only that lane's subsequent arrivals,
//     which then record the queueing delay they actually suffered.
//   - Each request's kind, submitter, and target sample derive
//     deterministically from (Seed, sequence number), so two runs at
//     one seed offer byte-equal workloads regardless of timing.
//   - Submitters are Zipf-distributed: a handful of heavy keys
//     dominate traffic, per the per-submitter tails Maat and van
//     Liebergen et al. measured on the real VT feed.
//   - Phases overlay hostile scenarios on index ranges of the run:
//     arrival-rate storms, operation-mix shifts (rescan storms),
//     feed-window amplification (feed-lag catch-up reads), and
//     Enter/Exit hooks for out-of-band injection (engine outages).
//
// Latency is recorded into per-operation obs histograms
// (loadgen_request_seconds{op}) with exponential buckets, plus exact
// per-op maxima tracked outside the histogram (fixed buckets cannot
// resolve beyond their last bound). Report extracts p50/p90/p99/p99.9
// via obs quantile interpolation.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vtdynamics/internal/obs"
)

// Kind is a request operation type.
type Kind uint8

const (
	// KindUpload submits a (possibly new) sample for analysis.
	KindUpload Kind = iota
	// KindReport fetches a sample's latest report.
	KindReport
	// KindRescan re-analyzes an existing sample.
	KindRescan
	// KindFeed pulls a feed slice covering Request.FeedWindow.
	KindFeed
	numKinds
)

// String returns the op label used in metrics series.
func (k Kind) String() string {
	switch k {
	case KindUpload:
		return "upload"
	case KindReport:
		return "report"
	case KindRescan:
		return "rescan"
	case KindFeed:
		return "feed"
	}
	return "unknown"
}

// OpNames lists the op labels in Kind order.
func OpNames() []string { return []string{"upload", "report", "rescan", "feed"} }

// Mix is the relative weight of each operation kind. Weights need not
// sum to 1; they only need a positive total.
type Mix struct {
	Upload float64
	Report float64
	Rescan float64
	Feed   float64
}

func (m Mix) weights() [numKinds]float64 {
	return [numKinds]float64{m.Upload, m.Report, m.Rescan, m.Feed}
}

func (m Mix) total() float64 { return m.Upload + m.Report + m.Rescan + m.Feed }

// DefaultMix is the steady-state operation blend: mostly submissions
// and report reads, like the paper's API traffic.
var DefaultMix = Mix{Upload: 0.50, Report: 0.32, Rescan: 0.13, Feed: 0.05}

// Phase overlays a hostile scenario on a slice of the run. FromFrac
// and ToFrac address the arrival index axis (fractions of Arrivals),
// so a phase covers an exact, deterministic set of requests; its wall
// window follows from the rate schedule.
type Phase struct {
	Name string
	// FromFrac/ToFrac bound the phase's arrival indexes:
	// [FromFrac*Arrivals, ToFrac*Arrivals). Phases must be sorted and
	// non-overlapping with 0 <= FromFrac < ToFrac <= 1.
	FromFrac, ToFrac float64
	// RateMul multiplies the base arrival rate inside the phase
	// (storms compress the timeline); 0 means unchanged.
	RateMul float64
	// Mix overrides the operation mix inside the phase; nil keeps the
	// config mix.
	Mix *Mix
	// FeedWindowMul multiplies the feed window of feed requests in the
	// phase (feed-lag catch-up reads span much more history); 0 means
	// unchanged.
	FeedWindowMul float64
	// Enter and Exit run on the phase's wall boundaries (e.g. taking
	// engines down and bringing them back). Either may be nil.
	Enter, Exit func()
}

// Request is one scheduled arrival, handed to the Target.
type Request struct {
	// Seq is the arrival index in [0, Arrivals).
	Seq int
	// Kind is the operation to perform.
	Kind Kind
	// Submitter is the Zipf-drawn submitter key in [0, Submitters).
	Submitter int
	// Sample indexes the population in [0, Samples): which sample to
	// upload, fetch, or rescan.
	Sample int
	// FeedWindow is how much history a KindFeed request spans.
	FeedWindow time.Duration
	// Scheduled is the arrival's place on the fixed timeline; latency
	// is measured from here.
	Scheduled time.Time
}

// ErrNotFound reports that the target rejected the request because
// the addressed resource does not exist yet — an expected outcome
// under open-loop mixes (a report may race ahead of the sample's
// first upload), counted separately from errors.
var ErrNotFound = errors.New("loadgen: resource not found")

// Target executes one request. Implementations map ErrNotFound-class
// rejections onto ErrNotFound (via errors.Is-compatible wrapping);
// any other error counts as a hard failure.
type Target interface {
	Do(ctx context.Context, req *Request) error
}

// TargetFunc adapts a function to Target.
type TargetFunc func(ctx context.Context, req *Request) error

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, req *Request) error { return f(ctx, req) }

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the base arrival rate in requests/second.
	Rate float64
	// Clients is the number of concurrent lanes arrivals are split
	// across (round-robin). Thousands are fine: lanes are goroutines.
	Clients int
	// Arrivals is the total scheduled request count.
	Arrivals int
	// Seed derives the whole workload (kinds, submitters, samples).
	Seed int64
	// Submitters is the number of distinct submitter keys.
	Submitters int
	// ZipfExponent shapes the per-submitter traffic tail: weight of
	// submitter k is (k+1)^-ZipfExponent. Must be > 0; 1.0–1.5 covers
	// the skew measured on real VT traffic.
	ZipfExponent float64
	// Samples is the population size requests address.
	Samples int
	// Mix is the steady-state operation mix; zero value selects
	// DefaultMix.
	Mix Mix
	// FeedWindow is the history span of a steady-state feed request.
	FeedWindow time.Duration
	// Phases are the hostile overlays, sorted by FromFrac.
	Phases []Phase
	// Metrics receives the generator's series; nil uses a private
	// registry (never the process default — soak runs must not bleed
	// into unrelated snapshots).
	Metrics *obs.Registry
	// LatencyScale multiplies every recorded latency (0 or 1
	// disables). It is the soak gate's self-test injector: a scaled
	// run against a clean baseline must trip the p50/p99 comparison.
	LatencyScale float64
}

// LatencyBuckets are the request-latency histogram bounds: 100µs to
// ~11s at 25% relative resolution, so p99.9 extraction interpolates
// within a quarter-decade everywhere in the plausible range.
var LatencyBuckets = obs.ExpBuckets(100e-6, 1.25, 52)

// OpStats summarizes one operation's (or the whole run's) measured
// latency distribution, in seconds.
type OpStats struct {
	Count    int64
	NotFound int64
	Errors   int64
	P50      float64
	P90      float64
	P99      float64
	P999     float64
	Max      float64
}

// Report is the outcome of one run.
type Report struct {
	// Arrivals is the scheduled request count (== Config.Arrivals).
	Arrivals int
	// Completed counts requests that executed (any outcome).
	Completed int64
	// NotFound and Errors partition the non-OK outcomes.
	NotFound int64
	Errors   int64
	// WallNS is the run's wall-clock from first scheduled arrival to
	// last completion.
	WallNS int64
	// AchievedRate is Completed divided by wall seconds.
	AchievedRate float64
	// Overall aggregates every operation; PerOp splits by op label.
	Overall OpStats
	PerOp   map[string]OpStats
	// OverallHist is the merged latency histogram the quantiles were
	// extracted from; PerOpHist the per-operation histograms.
	OverallHist obs.HistSnapshot
	PerOpHist   map[string]obs.HistSnapshot
	// MaxSchedLag is the worst lateness (seconds) between an
	// arrival's scheduled instant and its lane actually starting it —
	// the generator's own honesty bound. Backlogged lanes make this
	// large on purpose: the delay is real and charged to latency.
	MaxSchedLag float64
}

// segment is one constant-rate stretch of the arrival timeline.
type segment struct {
	firstSeq int           // first arrival index in the segment
	start    time.Duration // timeline offset of firstSeq's arrival
	interval float64       // seconds between arrivals
}

// plan is the fully-resolved deterministic schedule.
type plan struct {
	cfg      Config
	segments []segment
	// phaseBySeg[i] indexes cfg.Phases (or -1) for segments[i].
	phaseBySeg []int
	zipfCum    []float64
	end        time.Duration // offset just past the last arrival
}

func (c *Config) validate() error {
	switch {
	case c.Rate <= 0:
		return fmt.Errorf("loadgen: Rate %v, want > 0", c.Rate)
	case c.Clients < 1:
		return fmt.Errorf("loadgen: Clients %d, want >= 1", c.Clients)
	case c.Arrivals < 1:
		return fmt.Errorf("loadgen: Arrivals %d, want >= 1", c.Arrivals)
	case c.Submitters < 1:
		return fmt.Errorf("loadgen: Submitters %d, want >= 1", c.Submitters)
	case c.Samples < 1:
		return fmt.Errorf("loadgen: Samples %d, want >= 1", c.Samples)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("loadgen: ZipfExponent %v, want > 0", c.ZipfExponent)
	case c.FeedWindow <= 0:
		return fmt.Errorf("loadgen: FeedWindow %v, want > 0", c.FeedWindow)
	}
	if c.Mix.total() <= 0 {
		return fmt.Errorf("loadgen: Mix has no positive weight")
	}
	prev := 0.0
	for i, p := range c.Phases {
		if p.FromFrac < prev || p.ToFrac <= p.FromFrac || p.ToFrac > 1 {
			return fmt.Errorf("loadgen: phase %d (%q) window [%v, %v) invalid or overlapping",
				i, p.Name, p.FromFrac, p.ToFrac)
		}
		if p.Mix != nil && p.Mix.total() <= 0 {
			return fmt.Errorf("loadgen: phase %d (%q) mix has no positive weight", i, p.Name)
		}
		prev = p.ToFrac
	}
	return nil
}

// newPlan resolves the segment table and the Zipf cumulative weights.
func newPlan(cfg Config) (*plan, error) {
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &plan{cfg: cfg}

	// Build constant-rate segments by walking the phase boundaries on
	// the arrival-index axis and accumulating wall offsets.
	type boundary struct {
		seq   int
		phase int // phase starting here, or -1
	}
	var bounds []boundary
	bounds = append(bounds, boundary{0, -1})
	for i, ph := range cfg.Phases {
		from := int(ph.FromFrac * float64(cfg.Arrivals))
		to := int(ph.ToFrac * float64(cfg.Arrivals))
		if from >= to { // degenerate at this Arrivals count: skip
			continue
		}
		bounds = append(bounds, boundary{from, i}, boundary{to, -1})
	}
	sort.SliceStable(bounds, func(i, j int) bool { return bounds[i].seq < bounds[j].seq })

	offset := time.Duration(0)
	for i, b := range bounds {
		if i > 0 && b.seq == bounds[i-1].seq {
			// A phase starting at 0 (or back-to-back phases) replaces
			// the boundary at the same seq.
			p.segments = p.segments[:len(p.segments)-1]
			p.phaseBySeg = p.phaseBySeg[:len(p.phaseBySeg)-1]
		}
		rate := cfg.Rate
		if b.phase >= 0 && cfg.Phases[b.phase].RateMul > 0 {
			rate *= cfg.Phases[b.phase].RateMul
		}
		p.segments = append(p.segments, segment{firstSeq: b.seq, start: offset, interval: 1 / rate})
		p.phaseBySeg = append(p.phaseBySeg, b.phase)
		nextSeq := cfg.Arrivals
		if i+1 < len(bounds) {
			nextSeq = bounds[i+1].seq
		}
		offset += time.Duration(float64(nextSeq-b.seq) / rate * float64(time.Second))
		if nextSeq >= cfg.Arrivals {
			break
		}
	}
	p.end = p.segments[len(p.segments)-1].start +
		time.Duration(float64(cfg.Arrivals-p.segments[len(p.segments)-1].firstSeq)*
			p.segments[len(p.segments)-1].interval*float64(time.Second))

	// Zipf cumulative weights over submitter keys.
	p.zipfCum = make([]float64, cfg.Submitters)
	acc := 0.0
	for k := 0; k < cfg.Submitters; k++ {
		acc += math.Pow(float64(k+1), -cfg.ZipfExponent)
		p.zipfCum[k] = acc
	}
	return p, nil
}

// segmentOf returns the segment covering seq.
func (p *plan) segmentOf(seq int) int {
	return sort.Search(len(p.segments), func(i int) bool {
		return p.segments[i].firstSeq > seq
	}) - 1
}

// offsetOf returns seq's scheduled offset on the timeline.
func (p *plan) offsetOf(seq int) time.Duration {
	s := p.segments[p.segmentOf(seq)]
	return s.start + time.Duration(float64(seq-s.firstSeq)*s.interval*float64(time.Second))
}

// phaseOf returns the phase covering seq, or nil.
func (p *plan) phaseOf(seq int) *Phase {
	if i := p.phaseBySeg[p.segmentOf(seq)]; i >= 0 {
		return &p.cfg.Phases[i]
	}
	return nil
}

// mix64 is splitmix64's finalizer: the per-request hash turning
// (seed, seq, lane) into independent uniform draws without any
// allocation or shared state.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash onto [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// request materializes arrival seq's deterministic attributes.
func (p *plan) request(seq int) Request {
	h := mix64(uint64(p.cfg.Seed)<<20 ^ uint64(seq))
	u1 := unit(h)
	h = mix64(h)
	u2 := unit(h)
	h = mix64(h)
	u3 := unit(h)

	ph := p.phaseOf(seq)
	mix := p.cfg.Mix
	if ph != nil && ph.Mix != nil {
		mix = *ph.Mix
	}
	w := mix.weights()
	kind := Kind(numKinds - 1)
	target := u1 * mix.total()
	acc := 0.0
	for k, wk := range w {
		acc += wk
		if target < acc {
			kind = Kind(k)
			break
		}
	}

	// Zipf submitter draw via the cumulative table.
	zt := u2 * p.zipfCum[len(p.zipfCum)-1]
	sub := sort.SearchFloat64s(p.zipfCum, zt)
	if sub >= len(p.zipfCum) {
		sub = len(p.zipfCum) - 1
	}

	// Samples are introduced progressively (an open campaign keeps
	// seeing new files) and popularity-skewed toward earlier samples:
	// cubing the uniform concentrates reads and rescans on the old,
	// hot part of the population while uploads still extend it.
	introduced := seq*p.cfg.Samples/p.cfg.Arrivals + 1
	if introduced > p.cfg.Samples {
		introduced = p.cfg.Samples
	}
	sample := int(u3 * u3 * u3 * float64(introduced))
	if sample >= introduced {
		sample = introduced - 1
	}

	window := p.cfg.FeedWindow
	if ph != nil && ph.FeedWindowMul > 0 {
		window = time.Duration(float64(window) * ph.FeedWindowMul)
	}
	return Request{
		Seq:        seq,
		Kind:       kind,
		Submitter:  sub,
		Sample:     sample,
		FeedWindow: window,
	}
}

// atomicMax tracks a float64 maximum across goroutines.
type atomicMax struct{ bits atomic.Uint64 }

func (m *atomicMax) update(v float64) {
	for {
		old := m.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *atomicMax) value() float64 { return math.Float64frombits(m.bits.Load()) }

// Run executes the open-loop schedule against the target and returns
// the measured report. It returns an error only for configuration
// mistakes or context cancellation; target failures are outcomes,
// counted in the report.
func Run(ctx context.Context, cfg Config, target Target) (*Report, error) {
	p, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	scale := cfg.LatencyScale
	if scale <= 0 {
		scale = 1
	}

	ops := OpNames()
	hists := make([]*obs.Histogram, numKinds)
	okCnt := make([]*obs.Counter, numKinds)
	nfCnt := make([]*obs.Counter, numKinds)
	errCnt := make([]*obs.Counter, numKinds)
	maxes := make([]*atomicMax, numKinds)
	for k, op := range ops {
		hists[k] = reg.Histogram("loadgen_request_seconds", LatencyBuckets, "op", op)
		okCnt[k] = reg.Counter("loadgen_requests_total", "op", op, "outcome", "ok")
		nfCnt[k] = reg.Counter("loadgen_requests_total", "op", op, "outcome", "not_found")
		errCnt[k] = reg.Counter("loadgen_requests_total", "op", op, "outcome", "error")
		maxes[k] = &atomicMax{}
	}
	schedLag := reg.Histogram("loadgen_sched_lag_seconds", LatencyBuckets)
	inflight := reg.Gauge("loadgen_inflight")
	var lagMax atomicMax
	var completed, notFound, hardErrs atomic.Int64

	start := time.Now()

	// Phase boundary hooks run on the wall timeline derived from the
	// schedule. The watcher stops when the run drains (or cancels);
	// any Exit hooks not yet fired run then, so injected state (downed
	// engines) never leaks past Run.
	hookCtx, stopHooks := context.WithCancel(ctx)
	var hookWG sync.WaitGroup
	exitHooks := make([]func(), 0, len(p.cfg.Phases))
	for i := range p.cfg.Phases {
		ph := &p.cfg.Phases[i]
		from := int(ph.FromFrac * float64(cfg.Arrivals))
		to := int(ph.ToFrac * float64(cfg.Arrivals))
		if from >= to {
			continue
		}
		if ph.Exit != nil {
			exitHooks = append(exitHooks, ph.Exit)
		}
		enterAt, exitAt := p.offsetOf(from), p.end
		if to < cfg.Arrivals {
			exitAt = p.offsetOf(to)
		}
		hookWG.Add(1)
		go func(ph *Phase, enterAt, exitAt time.Duration) {
			defer hookWG.Done()
			select {
			case <-hookCtx.Done():
				return
			case <-time.After(time.Until(start.Add(enterAt))):
			}
			if ph.Enter != nil {
				ph.Enter()
			}
			select {
			case <-hookCtx.Done():
			case <-time.After(time.Until(start.Add(exitAt))):
			}
			if ph.Exit != nil {
				ph.Exit()
			}
		}(ph, enterAt, exitAt)
	}

	var wg sync.WaitGroup
	for lane := 0; lane < cfg.Clients; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for seq := lane; seq < cfg.Arrivals; seq += cfg.Clients {
				sched := start.Add(p.offsetOf(seq))
				if d := time.Until(sched); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				} else if ctx.Err() != nil {
					return
				}
				req := p.request(seq)
				req.Scheduled = sched
				lag := time.Since(sched).Seconds()
				schedLag.Observe(lag)
				lagMax.update(lag)
				inflight.Add(1)
				err := target.Do(ctx, &req)
				inflight.Add(-1)
				lat := time.Since(sched).Seconds() * scale
				hists[req.Kind].Observe(lat)
				maxes[req.Kind].update(lat)
				completed.Add(1)
				switch {
				case err == nil:
					okCnt[req.Kind].Inc()
				case errors.Is(err, ErrNotFound):
					nfCnt[req.Kind].Inc()
					notFound.Add(1)
				default:
					errCnt[req.Kind].Inc()
					hardErrs.Add(1)
				}
			}
		}(lane)
	}
	wg.Wait()
	wall := time.Since(start)
	stopHooks()
	hookWG.Wait()
	if ctx.Err() != nil {
		// Cancellation may have skipped Exit hooks; run them so
		// injected state is always unwound.
		for _, exit := range exitHooks {
			exit()
		}
		return nil, fmt.Errorf("loadgen: %w", ctx.Err())
	}

	rep := &Report{
		Arrivals:    cfg.Arrivals,
		Completed:   completed.Load(),
		NotFound:    notFound.Load(),
		Errors:      hardErrs.Load(),
		WallNS:      wall.Nanoseconds(),
		PerOp:       make(map[string]OpStats, numKinds),
		PerOpHist:   make(map[string]obs.HistSnapshot, numKinds),
		MaxSchedLag: lagMax.value(),
	}
	if wall > 0 {
		rep.AchievedRate = float64(rep.Completed) / wall.Seconds()
	}
	var overall obs.HistSnapshot
	var overallMax float64
	for k, op := range ops {
		snap := hists[k].Snapshot()
		rep.PerOpHist[op] = snap
		rep.PerOp[op] = OpStats{
			Count:    snap.Count,
			NotFound: nfCnt[k].Value(),
			Errors:   errCnt[k].Value(),
			P50:      snap.Quantile(0.50),
			P90:      snap.Quantile(0.90),
			P99:      snap.Quantile(0.99),
			P999:     snap.Quantile(0.999),
			Max:      maxes[k].value(),
		}
		if overall.Bounds == nil {
			overall = snap
		} else {
			overall = overall.Merge(snap)
		}
		if m := maxes[k].value(); m > overallMax {
			overallMax = m
		}
	}
	rep.OverallHist = overall
	rep.Overall = OpStats{
		Count:    overall.Count,
		NotFound: rep.NotFound,
		Errors:   rep.Errors,
		P50:      overall.Quantile(0.50),
		P90:      overall.Quantile(0.90),
		P99:      overall.Quantile(0.99),
		P999:     overall.Quantile(0.999),
		Max:      overallMax,
	}
	return rep, nil
}

// Duration returns the schedule's nominal length (last arrival's
// offset plus one interval) — what the run takes when the target
// keeps up.
func Duration(cfg Config) (time.Duration, error) {
	p, err := newPlan(cfg)
	if err != nil {
		return 0, err
	}
	return p.end, nil
}
