package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Rate:         100,
		Clients:      4,
		Arrivals:     1000,
		Seed:         42,
		Submitters:   500,
		ZipfExponent: 1.1,
		Samples:      200,
		FeedWindow:   2 * time.Second,
	}
}

// TestPlanOffsets pins the piecewise-constant timeline arithmetic: a
// storm phase compresses exactly its own index range and shifts
// everything after it.
func TestPlanOffsets(t *testing.T) {
	cfg := testConfig()
	p, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.offsetOf(0); got != 0 {
		t.Errorf("offsetOf(0) = %v, want 0", got)
	}
	if got := p.offsetOf(100); got != time.Second {
		t.Errorf("offsetOf(100) = %v, want 1s", got)
	}
	if p.end != 10*time.Second {
		t.Errorf("end = %v, want 10s", p.end)
	}

	// A 4x storm over [0.4, 0.55): arrivals 400-549 come at 400/s.
	cfg.Phases = []Phase{{Name: "storm", FromFrac: 0.4, ToFrac: 0.55, RateMul: 4}}
	p, err = newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.offsetOf(400); got != 4*time.Second {
		t.Errorf("storm start offsetOf(400) = %v, want 4s", got)
	}
	wantMid := 4*time.Second + 375*time.Millisecond // 150 arrivals at 400/s
	if got := p.offsetOf(550); got != wantMid {
		t.Errorf("post-storm offsetOf(550) = %v, want %v", got, wantMid)
	}
	wantEnd := wantMid + 4500*time.Millisecond // remaining 450 at 100/s
	if p.end != wantEnd {
		t.Errorf("end with storm = %v, want %v", p.end, wantEnd)
	}
	if d, err := Duration(cfg); err != nil || d != wantEnd {
		t.Errorf("Duration = %v, %v; want %v, nil", d, err, wantEnd)
	}
}

// TestWorkloadDeterminism checks that request attributes are a pure
// function of (seed, seq): same seed, same workload; different seed,
// different workload.
func TestWorkloadDeterminism(t *testing.T) {
	cfg := testConfig()
	a, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := newPlan(cfg)
	for seq := 0; seq < cfg.Arrivals; seq++ {
		ra, rb := a.request(seq), b.request(seq)
		if ra.Kind != rb.Kind || ra.Submitter != rb.Submitter || ra.Sample != rb.Sample {
			t.Fatalf("seq %d differs across identical plans: %+v vs %+v", seq, ra, rb)
		}
		if ra.Sample < 0 || ra.Sample >= cfg.Samples {
			t.Fatalf("seq %d sample %d out of [0, %d)", seq, ra.Sample, cfg.Samples)
		}
		if ra.Submitter < 0 || ra.Submitter >= cfg.Submitters {
			t.Fatalf("seq %d submitter %d out of [0, %d)", seq, ra.Submitter, cfg.Submitters)
		}
	}
	cfg.Seed = 43
	c, _ := newPlan(cfg)
	diff := 0
	for seq := 0; seq < cfg.Arrivals; seq++ {
		if a.request(seq) != c.request(seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed nothing about the workload")
	}
}

// TestZipfSkew checks the heavy-tailed submitter mix: the hottest key
// takes far more than a uniform share, and the tail is still reached.
func TestZipfSkew(t *testing.T) {
	cfg := testConfig()
	cfg.Arrivals = 20000
	p, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Submitters)
	for seq := 0; seq < cfg.Arrivals; seq++ {
		counts[p.request(seq).Submitter]++
	}
	uniform := float64(cfg.Arrivals) / float64(cfg.Submitters) // 40
	if got := float64(counts[0]); got < 20*uniform {
		t.Errorf("hottest submitter got %v arrivals, want >= 20x the uniform share (%v)", got, 20*uniform)
	}
	tailHits := 0
	for _, c := range counts[cfg.Submitters/2:] {
		tailHits += c
	}
	if tailHits == 0 {
		t.Error("no arrivals reached the cold half of the submitter space")
	}
}

// TestMixShares checks the steady-state kind mix and a phase override:
// inside a rescan storm the rescan share dominates.
func TestMixShares(t *testing.T) {
	cfg := testConfig()
	cfg.Arrivals = 10000
	cfg.Phases = []Phase{{
		Name: "rescan-storm", FromFrac: 0.4, ToFrac: 0.6,
		Mix: &Mix{Upload: 0.05, Report: 0.05, Rescan: 0.88, Feed: 0.02},
	}}
	p, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steady, storm [numKinds]int
	for seq := 0; seq < cfg.Arrivals; seq++ {
		r := p.request(seq)
		if seq >= 4000 && seq < 6000 {
			storm[r.Kind]++
		} else {
			steady[r.Kind]++
		}
	}
	steadyTotal := float64(cfg.Arrivals - 2000)
	if share := float64(steady[KindUpload]) / steadyTotal; math.Abs(share-DefaultMix.Upload) > 0.05 {
		t.Errorf("steady upload share %v, want ~%v", share, DefaultMix.Upload)
	}
	if share := float64(storm[KindRescan]) / 2000; share < 0.8 {
		t.Errorf("storm rescan share %v, want >= 0.8", share)
	}
	if share := float64(steady[KindRescan]) / steadyTotal; share > 0.25 {
		t.Errorf("steady rescan share %v leaked the storm mix", share)
	}
}

// TestFeedWindowMul checks the feed-lag overlay: feed requests inside
// the phase span the amplified window.
func TestFeedWindowMul(t *testing.T) {
	cfg := testConfig()
	cfg.Mix = Mix{Feed: 1} // all feed, so every seq is observable
	cfg.Phases = []Phase{{Name: "feed-lag", FromFrac: 0.5, ToFrac: 0.8, FeedWindowMul: 40}}
	p, err := newPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.request(100).FeedWindow; got != cfg.FeedWindow {
		t.Errorf("steady feed window = %v, want %v", got, cfg.FeedWindow)
	}
	if got := p.request(600).FeedWindow; got != 40*cfg.FeedWindow {
		t.Errorf("feed-lag window = %v, want %v", got, 40*cfg.FeedWindow)
	}
}

// TestRunCountsOutcomes drives a fast run where reports are rejected
// as not-found and everything else succeeds; the partition must be
// exact and no outcome may count as a hard error.
func TestRunCountsOutcomes(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 50000
	cfg.Arrivals = 2000
	cfg.Clients = 64
	var reports atomic.Int64
	rep, err := Run(context.Background(), cfg, TargetFunc(func(_ context.Context, req *Request) error {
		if req.Kind == KindReport {
			reports.Add(1)
			return fmt.Errorf("%w: no such sample", ErrNotFound)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != int64(cfg.Arrivals) {
		t.Fatalf("Completed = %d, want %d", rep.Completed, cfg.Arrivals)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", rep.Errors)
	}
	if rep.NotFound != reports.Load() {
		t.Fatalf("NotFound = %d, want %d", rep.NotFound, reports.Load())
	}
	if got := rep.PerOp["report"].NotFound; got != reports.Load() {
		t.Fatalf("PerOp[report].NotFound = %d, want %d", got, reports.Load())
	}
	if rep.Overall.Count != int64(cfg.Arrivals) {
		t.Fatalf("Overall.Count = %d, want %d", rep.Overall.Count, cfg.Arrivals)
	}
	var perOpSum int64
	for _, op := range OpNames() {
		perOpSum += rep.PerOp[op].Count
	}
	if perOpSum != rep.Overall.Count {
		t.Fatalf("per-op counts sum to %d, overall %d", perOpSum, rep.Overall.Count)
	}
	if rep.AchievedRate <= 0 {
		t.Fatal("AchievedRate not computed")
	}
}

// TestCoordinatedOmissionHonesty is the reason this package exists: a
// single 50ms stall on one request must poison the recorded latency
// of the dozens of arrivals scheduled behind it on the same lane. A
// closed-loop generator would record one 50ms outlier and a clean
// tail; the open-loop schedule charges the queueing delay to every
// delayed request.
func TestCoordinatedOmissionHonesty(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 1000
	cfg.Arrivals = 200
	cfg.Clients = 1 // one lane: the stall's backlog is fully visible
	rep, err := Run(context.Background(), cfg, TargetFunc(func(_ context.Context, req *Request) error {
		if req.Seq == 50 {
			time.Sleep(50 * time.Millisecond)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Max < 0.050 {
		t.Fatalf("Max = %v, want >= the 50ms stall", rep.Overall.Max)
	}
	// Arrivals 51..~99 were scheduled during the stall; each records
	// the queueing delay it suffered. At least ~30 must exceed 10ms.
	delayed := int64(0)
	for i, bound := range rep.OverallHist.Bounds {
		if bound > 0.010 {
			delayed += rep.OverallHist.Buckets[i]
		}
	}
	delayed += rep.OverallHist.Buckets[len(rep.OverallHist.Buckets)-1]
	if delayed < 30 {
		t.Fatalf("only %d requests recorded > 10ms latency; open-loop accounting "+
			"should charge the stall to its whole backlog", delayed)
	}
	// The tail quantiles must see it too: 40+ poisoned of 200 puts
	// p90 well above a clean sub-millisecond baseline.
	if rep.Overall.P90 < 0.005 {
		t.Fatalf("P90 = %v, want the stall backlog to lift it above 5ms", rep.Overall.P90)
	}
	if rep.MaxSchedLag < 0.040 {
		t.Fatalf("MaxSchedLag = %v, want >= ~40ms (the generator must admit it fell behind)", rep.MaxSchedLag)
	}
}

// TestPhaseHooks checks Enter/Exit fire in order on the wall timeline
// and always unwind by the time Run returns.
func TestPhaseHooks(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 2000
	cfg.Arrivals = 400
	cfg.Clients = 8
	var entered, exited atomic.Int64
	cfg.Phases = []Phase{{
		Name: "outage", FromFrac: 0.25, ToFrac: 0.75,
		Enter: func() { entered.Store(time.Now().UnixNano()) },
		Exit:  func() { exited.Store(time.Now().UnixNano()) },
	}}
	if _, err := Run(context.Background(), cfg, TargetFunc(func(context.Context, *Request) error {
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if entered.Load() == 0 || exited.Load() == 0 {
		t.Fatalf("hooks did not both fire: enter=%d exit=%d", entered.Load(), exited.Load())
	}
	if exited.Load() < entered.Load() {
		t.Fatal("Exit fired before Enter")
	}
}

// TestLatencyScale checks the handicap injector: scaling latencies by
// a large factor must move the recorded quantiles by orders of
// magnitude, since the soak CI gate's self-test depends on it.
func TestLatencyScale(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 50000
	cfg.Arrivals = 500
	cfg.Clients = 16
	instant := TargetFunc(func(context.Context, *Request) error { return nil })
	clean, err := Run(context.Background(), cfg, instant)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LatencyScale = 1e6
	scaled, err := Run(context.Background(), cfg, instant)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Overall.P50 < 1000*clean.Overall.P50 {
		t.Fatalf("scaled P50 %v vs clean %v: LatencyScale had no effect", scaled.Overall.P50, clean.Overall.P50)
	}
	if scaled.Overall.P50 < 0.001 {
		t.Fatalf("scaled P50 = %v, want >= 1ms after a 1e6x scale of microsecond latencies", scaled.Overall.P50)
	}
}

// TestRunCancellation checks that a cancelled context aborts the run
// with an error instead of a partial report.
func TestRunCancellation(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 10 // nominal 100s: must be cut short
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		rep, err = Run(ctx, cfg, TargetFunc(func(context.Context, *Request) error { return nil }))
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled Run still returned a report")
	}
}

// TestConfigValidation spot-checks the rejection paths.
func TestConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"zero rate":       func(c *Config) { c.Rate = 0 },
		"no clients":      func(c *Config) { c.Clients = 0 },
		"no arrivals":     func(c *Config) { c.Arrivals = 0 },
		"zero zipf":       func(c *Config) { c.ZipfExponent = 0 },
		"overlap phases":  func(c *Config) { c.Phases = []Phase{{FromFrac: 0, ToFrac: 0.5}, {FromFrac: 0.4, ToFrac: 0.6}} },
		"inverted phase":  func(c *Config) { c.Phases = []Phase{{FromFrac: 0.5, ToFrac: 0.5}} },
		"phase past end":  func(c *Config) { c.Phases = []Phase{{FromFrac: 0.5, ToFrac: 1.5}} },
		"empty phase mix": func(c *Config) { c.Phases = []Phase{{FromFrac: 0.1, ToFrac: 0.2, Mix: &Mix{}}} },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, err := Run(context.Background(), cfg, TargetFunc(func(context.Context, *Request) error {
				return nil
			})); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
