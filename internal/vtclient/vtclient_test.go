package vtclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// fakeEnvelope returns a minimal valid VT-wire envelope body.
func fakeEnvelope(t *testing.T) []byte {
	t.Helper()
	env := report.Envelope{
		Meta: report.SampleMeta{SHA256: "abc", FileType: "TXT",
			LastAnalysisDate: time.Unix(1620000000, 0)},
		Scan: report.ScanReport{SHA256: "abc", FileType: "TXT",
			AnalysisDate: time.Unix(1620000000, 0)},
	}
	b, err := env.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRetriesOn500ThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	body := fakeEnvelope(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":{"code":"TransientError","message":"try again"}}`, 500)
			return
		}
		w.Write(body)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	env, err := c.Report(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if env.Meta.SHA256 != "abc" {
		t.Fatalf("meta = %+v", env.Meta)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestGivesUpAfterRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", 500)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Report(context.Background(), "abc")
	if err == nil {
		t.Fatal("expected failure after retries")
	}
}

func TestNotFoundIsNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":{"code":"NotFoundError","message":"nope"}}`, 404)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	_, err := c.Report(context.Background(), "abc")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried: %d calls", calls.Load())
	}
}

func TestQuotaRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	body := fakeEnvelope(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":{"code":"QuotaExceededError","message":"slow down"}}`, 429)
			return
		}
		w.Write(body)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond),
		WithMaxRetryAfter(2*time.Second))
	start := time.Now()
	_, err := c.Report(context.Background(), "abc")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("Retry-After not honored: only waited %v", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestQuotaRetryAfterTooLongFailsFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		http.Error(w, `{"error":{"code":"QuotaExceededError","message":"daily"}}`, 429)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(3), WithMaxRetryAfter(time.Second))
	start := time.Now()
	_, err := c.Report(context.Background(), "abc")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("waited on an over-cap Retry-After")
	}
}

func TestAPIKeyHeaderSent(t *testing.T) {
	var gotKey atomic.Value
	body := fakeEnvelope(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.Header.Get("x-apikey"))
		w.Write(body)
	}))
	defer srv.Close()
	c := New(srv.URL, WithAPIKey("sekrit"))
	if _, err := c.Report(context.Background(), "abc"); err != nil {
		t.Fatal(err)
	}
	if gotKey.Load() != "sekrit" {
		t.Fatalf("x-apikey = %v", gotKey.Load())
	}
}

func TestContextCancellationDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", 500)
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(5), WithBackoff(10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Report(ctx, "abc")
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context cancellation did not interrupt backoff")
	}
}

func TestMalformedEnvelopeSurfacesError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"data":{"type":"url"}}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Report(context.Background(), "abc"); err == nil {
		t.Fatal("expected envelope decode error")
	}
}

func TestFeedDecodesArray(t *testing.T) {
	body := fakeEnvelope(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("["))
		w.Write(body)
		w.Write([]byte(","))
		w.Write(body)
		w.Write([]byte("]"))
	}))
	defer srv.Close()
	c := New(srv.URL)
	envs, err := c.FeedBetween(context.Background(), time.Unix(0, 0), time.Unix(60, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("envelopes = %d", len(envs))
	}
}

func TestNetworkErrorRetried(t *testing.T) {
	// Point at a closed port: all attempts fail with a transport
	// error, surfaced after the retry budget.
	c := New("http://127.0.0.1:1", WithRetries(1), WithBackoff(time.Millisecond))
	_, err := c.Report(context.Background(), "abc")
	if err == nil {
		t.Fatal("expected network error")
	}
}

// TestDecodeFeedMatchesStdlib pins the fast feed splitter against
// encoding/json across framing shapes, including the fallbacks.
func TestDecodeFeedMatchesStdlib(t *testing.T) {
	env := report.Envelope{}
	env.Meta.SHA256 = "feed1"
	env.Scan.SHA256 = "feed1"
	one := string(env.AppendJSON(nil))
	cases := []string{
		`[]`,
		`[ ]`,
		"[" + one + "\n]",
		"[" + one + "\n," + one + "\n]",
		"  [ " + one + " , " + one + " ]  ",
		`null`,
		`[{"data":{"type":"url"}}]`, // element error
		`[` + one + `,]`,            // trailing comma
		`[` + one + `] junk`,        // trailing junk
		`[`,                         // unterminated
		``,
	}
	for _, raw := range cases {
		got, errGot := decodeFeed([]byte(raw))
		var want []report.Envelope
		errWant := json.Unmarshal([]byte(raw), &want)
		if (errGot == nil) != (errWant == nil) {
			t.Errorf("decodeFeed(%q) err = %v, stdlib err = %v", raw, errGot, errWant)
			continue
		}
		if errGot != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("decodeFeed(%q) = %+v, stdlib = %+v", raw, got, want)
		}
	}
}
