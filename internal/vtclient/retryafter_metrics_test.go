package vtclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vtdynamics/internal/obs"
)

// TestRetryAfterMetricsTable pins the 429/Retry-After contract with
// the counters as evidence: an in-cap hint is honored (the wait lands
// in the wait histogram and the retry counts under reason="429"), an
// over-cap hint fails fast and counts as capped, and a missing hint
// fails fast counting nothing.
func TestRetryAfterMetricsTable(t *testing.T) {
	cases := []struct {
		name          string
		hint          string // Retry-After header on the first response
		maxRetryAfter time.Duration
		wantErr       error // nil: the retried request succeeds
		want429       int64 // client_retries_total{reason="429"}
		wantCapped    int64 // client_retry_after_capped_total
		wantWaits     int64 // observations in client_retry_after_wait_seconds
		minElapsed    time.Duration
		maxElapsed    time.Duration
	}{
		{
			name: "honored", hint: "1", maxRetryAfter: 2 * time.Second,
			want429: 1, wantWaits: 1, minElapsed: 900 * time.Millisecond,
		},
		{
			name: "capped", hint: "3600", maxRetryAfter: time.Second,
			wantErr: ErrQuotaExceeded, wantCapped: 1, maxElapsed: 500 * time.Millisecond,
		},
		{
			name: "no-hint", hint: "", maxRetryAfter: time.Second,
			wantErr: ErrQuotaExceeded, maxElapsed: 500 * time.Millisecond,
		},
	}
	body := fakeEnvelope(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) == 1 {
					if tc.hint != "" {
						w.Header().Set("Retry-After", tc.hint)
					}
					http.Error(w, `{"error":{"code":"QuotaExceededError","message":"slow down"}}`, 429)
					return
				}
				w.Write(body)
			}))
			defer srv.Close()

			reg := obs.NewRegistry()
			c := New(srv.URL,
				WithRetries(2),
				WithBackoff(time.Millisecond),
				WithMaxRetryAfter(tc.maxRetryAfter),
				WithMetrics(reg))
			start := time.Now()
			_, err := c.Report(context.Background(), "abc")
			elapsed := time.Since(start)

			if tc.wantErr == nil && err != nil {
				t.Fatalf("request failed: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.minElapsed > 0 && elapsed < tc.minElapsed {
				t.Errorf("returned in %v; hint of %ss not honored", elapsed, tc.hint)
			}
			if tc.maxElapsed > 0 && elapsed > tc.maxElapsed {
				t.Errorf("took %v; should have failed fast", elapsed)
			}

			if got := reg.Counter("client_retries_total", "reason", "429").Value(); got != tc.want429 {
				t.Errorf("client_retries_total{reason=429} = %d, want %d", got, tc.want429)
			}
			if got := reg.Counter("client_retry_after_capped_total").Value(); got != tc.wantCapped {
				t.Errorf("client_retry_after_capped_total = %d, want %d", got, tc.wantCapped)
			}
			waits := reg.Histogram("client_retry_after_wait_seconds", obs.DefBuckets).Snapshot()
			if waits.Count != tc.wantWaits {
				t.Errorf("retry-after wait observations = %d, want %d", waits.Count, tc.wantWaits)
			}
			if tc.wantWaits > 0 && waits.Sum < 0.9 {
				t.Errorf("retry-after wait sum = %v s, want ~1s recorded", waits.Sum)
			}
			// Exactly one logical request flows through, whatever its
			// attempt count.
			if n := reg.Histogram("client_request_attempts", obs.CountBuckets(16)).Count(); n != 1 {
				t.Errorf("client_request_attempts observations = %d, want 1", n)
			}
		})
	}
}
