// Package vtclient is the typed HTTP client for the simulated
// VirusTotal API — the piece a collector (cmd/vtcollect) or any user
// script talks through, mirroring the upload/report/rescan calls of
// the paper's §2.1 plus the premium feed.
//
// The client retries transient failures (network errors and 5xx)
// with exponential backoff and honors context cancellation.
package vtclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"vtdynamics/internal/bufpool"
	"vtdynamics/internal/jsonx"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/vtapi"
)

// ErrNotFound is returned for unknown samples (HTTP 404).
var ErrNotFound = errors.New("vtclient: not found")

// ErrQuotaExceeded is returned when the server keeps answering 429
// after the retry budget is spent.
var ErrQuotaExceeded = errors.New("vtclient: quota exceeded")

// ErrForbidden is returned for 403 (e.g. feed access without a
// premium key).
var ErrForbidden = errors.New("vtclient: forbidden")

// ErrUnauthorized is returned for 401 (missing or unknown API key).
var ErrUnauthorized = errors.New("vtclient: unauthorized")

// Client talks to one API server.
type Client struct {
	base       string
	httpClient *http.Client
	maxRetries int
	backoff    time.Duration
	apiKey     string
	// maxRetryAfter caps how long a Retry-After hint is honored.
	maxRetryAfter time.Duration
	reg           *obs.Registry
	m             clientMetrics
}

// clientMetrics caches the client's series so the request path never
// touches the registry map. client_attempts_total counts every HTTP
// request put on the wire — the invariant suite matches it against
// the server's api_requests_total.
type clientMetrics struct {
	attempts         *obs.Counter
	retryNetwork     *obs.Counter
	retry5xx         *obs.Counter
	retry429         *obs.Counter
	retryAfterCapped *obs.Counter
	retryAfterWait   *obs.Histogram
	backoff          *obs.Histogram
	requestAttempts  *obs.Histogram
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		attempts:         reg.Counter("client_attempts_total"),
		retryNetwork:     reg.Counter("client_retries_total", "reason", "network"),
		retry5xx:         reg.Counter("client_retries_total", "reason", "5xx"),
		retry429:         reg.Counter("client_retries_total", "reason", "429"),
		retryAfterCapped: reg.Counter("client_retry_after_capped_total"),
		retryAfterWait:   reg.Histogram("client_retry_after_wait_seconds", obs.DefBuckets),
		backoff:          reg.Histogram("client_backoff_seconds", obs.DefBuckets),
		requestAttempts:  reg.Histogram("client_request_attempts", obs.CountBuckets(16)),
	}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpClient = h }
}

// WithRetries sets the number of retries for transient failures.
func WithRetries(n int) Option {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoff sets the initial backoff (doubled per retry).
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// WithAPIKey sends the key in the x-apikey header (VT's convention).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithMaxRetryAfter caps how long a server Retry-After hint is
// honored before giving up with ErrQuotaExceeded (default 5s).
func WithMaxRetryAfter(d time.Duration) Option {
	return func(c *Client) { c.maxRetryAfter = d }
}

// WithMetrics routes the client's instrumentation (attempts, retries
// by reason, backoff and Retry-After waits) into reg instead of the
// process-wide default registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Client) { c.reg = reg }
}

// New builds a client for the given base URL (e.g.
// "http://127.0.0.1:8099").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:          base,
		httpClient:    &http.Client{Timeout: 30 * time.Second},
		maxRetries:    2,
		backoff:       50 * time.Millisecond,
		maxRetryAfter: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.reg == nil {
		c.reg = obs.Default()
	}
	c.m = newClientMetrics(c.reg)
	return c
}

// Upload submits a file descriptor and returns the analysis envelope.
func (c *Client) Upload(ctx context.Context, desc vtapi.UploadDescriptor) (report.Envelope, error) {
	body, err := json.Marshal(desc)
	if err != nil {
		return report.Envelope{}, fmt.Errorf("vtclient: %w", err)
	}
	return c.doEnvelope(ctx, http.MethodPost, "/api/v3/files", body)
}

// Report fetches the latest report for a hash without triggering a
// new analysis.
func (c *Client) Report(ctx context.Context, sha256 string) (report.Envelope, error) {
	return c.doEnvelope(ctx, http.MethodGet, "/api/v3/files/"+url.PathEscape(sha256), nil)
}

// Rescan requests a re-analysis of an existing sample.
func (c *Client) Rescan(ctx context.Context, sha256 string) (report.Envelope, error) {
	return c.doEnvelope(ctx, http.MethodPost, "/api/v3/files/"+url.PathEscape(sha256)+"/analyse", nil)
}

// FeedBetween fetches the premium-feed slice for [from, to).
func (c *Client) FeedBetween(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
	return c.FeedBetweenLimit(ctx, from, to, 0)
}

// FeedBetweenLimit is FeedBetween with a page cap: the server returns
// at most limit envelopes from the start of the window (limit <= 0
// fetches the whole slice). Catch-up consumers page with it so one
// response never carries an unbounded backlog.
func (c *Client) FeedBetweenLimit(ctx context.Context, from, to time.Time, limit int) ([]report.Envelope, error) {
	path := "/api/v3/feed/reports?from=" + strconv.FormatInt(from.Unix(), 10) +
		"&to=" + strconv.FormatInt(to.Unix(), 10)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	buf, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	envs, err := decodeFeed(buf.Bytes())
	bufpool.PutBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("vtclient: feed decode: %w", err)
	}
	return envs, nil
}

// decodeFeed splits the feed array with the jsonx span scanner and
// decodes each element through the envelope fast path, avoiding
// encoding/json's whole-body pre-scan. Any framing surprise falls
// back to the reflective decode of the entire body, so accepted and
// rejected inputs are exactly encoding/json's.
func decodeFeed(raw []byte) ([]report.Envelope, error) {
	if envs, ok := decodeFeedFast(raw); ok {
		return envs, nil
	}
	var envs []report.Envelope
	if err := json.Unmarshal(raw, &envs); err != nil {
		return nil, err
	}
	return envs, nil
}

func decodeFeedFast(raw []byte) ([]report.Envelope, bool) {
	c := jsonx.Cursor{Buf: raw}
	empty, err := c.ArrayStart()
	if err != nil {
		return nil, false
	}
	// Non-nil like encoding/json, which allocates the slice for `[]`.
	envs := []report.Envelope{}
	if !empty {
		for {
			c.SkipSpace()
			start := c.Pos
			if err := c.SkipValue(); err != nil {
				return nil, false
			}
			// UnmarshalJSON fully validates the span SkipValue found;
			// a bad span surfaces as a decode error here.
			var env report.Envelope
			if err := env.UnmarshalJSON(raw[start:c.Pos]); err != nil {
				return nil, false
			}
			envs = append(envs, env)
			done, err := c.ArrayNext()
			if err != nil {
				return nil, false
			}
			if done {
				break
			}
		}
	}
	if c.AtEOF() != nil {
		return nil, false
	}
	return envs, true
}

func (c *Client) doEnvelope(ctx context.Context, method, path string, body []byte) (report.Envelope, error) {
	buf, err := c.do(ctx, method, path, body)
	if err != nil {
		return report.Envelope{}, err
	}
	var env report.Envelope
	// UnmarshalJSON never aliases its input (pinned by
	// TestUnmarshalDoesNotAliasInput), so the body buffer can be
	// recycled immediately after the decode.
	err = env.UnmarshalJSON(buf.Bytes())
	bufpool.PutBuffer(buf)
	if err != nil {
		return report.Envelope{}, fmt.Errorf("vtclient: envelope decode: %w", err)
	}
	return env, nil
}

// do performs the request with retry on transient failures. A non-nil
// buffer result is drawn from bufpool — the caller owns it and must
// release it with bufpool.PutBuffer once done with its bytes.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*bytes.Buffer, error) {
	var lastErr error
	attemptsUsed := 0
	defer func() { c.m.requestAttempts.Observe(float64(attemptsUsed)) }()
	backoff := c.backoff
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			c.m.backoff.Observe(backoff.Seconds())
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		attemptsUsed++
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("vtclient: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.apiKey != "" {
			req.Header.Set("x-apikey", c.apiKey)
		}
		c.m.attempts.Inc()
		resp, err := c.httpClient.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("vtclient: %w", err)
			c.m.retryNetwork.Inc()
			continue // transient: retry
		}
		buf := bufpool.GetBuffer()
		_, readErr := buf.ReadFrom(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if readErr != nil {
			bufpool.PutBuffer(buf)
			lastErr = fmt.Errorf("vtclient: read body: %w", readErr)
			continue
		}
		// Every branch below either returns buf to the caller or builds
		// its error/message strings (copies) before releasing it.
		data := buf.Bytes()
		if resp.StatusCode == http.StatusOK {
			return buf, nil
		}
		switch {
		case resp.StatusCode == http.StatusNotFound:
			err = fmt.Errorf("%w: %s", ErrNotFound, apiMessage(data))
		case resp.StatusCode == http.StatusUnauthorized:
			err = fmt.Errorf("%w: %s", ErrUnauthorized, apiMessage(data))
		case resp.StatusCode == http.StatusForbidden:
			err = fmt.Errorf("%w: %s", ErrForbidden, apiMessage(data))
		case resp.StatusCode == http.StatusTooManyRequests:
			// Honor the server's Retry-After hint within our cap, then
			// count the attempt against the retry budget.
			wait := retryAfter(resp.Header.Get("Retry-After"))
			if wait <= 0 || wait > c.maxRetryAfter {
				if wait > c.maxRetryAfter {
					c.m.retryAfterCapped.Inc()
				}
				err = fmt.Errorf("%w: %s", ErrQuotaExceeded, apiMessage(data))
				bufpool.PutBuffer(buf)
				return nil, err
			}
			c.m.retryAfterWait.Observe(wait.Seconds())
			lastErr = fmt.Errorf("%w: %s", ErrQuotaExceeded, apiMessage(data))
			bufpool.PutBuffer(buf)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
			c.m.retry429.Inc()
			continue
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("vtclient: server error %d: %s", resp.StatusCode, apiMessage(data))
			bufpool.PutBuffer(buf)
			c.m.retry5xx.Inc()
			continue // transient: retry
		default:
			err = fmt.Errorf("vtclient: HTTP %d: %s", resp.StatusCode, apiMessage(data))
		}
		bufpool.PutBuffer(buf)
		return nil, err
	}
	return nil, lastErr
}

// retryAfter parses a Retry-After header given in seconds.
func retryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// apiMessage extracts the error message from a VT error envelope,
// falling back to the raw body.
func apiMessage(data []byte) string {
	var e struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err == nil && e.Error.Message != "" {
		return e.Error.Message
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(data)
}
