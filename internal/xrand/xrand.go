// Package xrand provides deterministic, seedable random sources and
// the handful of distributions the workload and engine generators
// need: Bernoulli draws, weighted choice, Poisson counts, lognormal
// gaps, and a bounded heavy-tail for reports-per-sample.
//
// Everything is built on math/rand with an explicit source so that a
// simulation seeded identically reproduces bit-identical report
// streams — a requirement for the experiment harness, whose expected
// values are recorded in EXPERIMENTS.md.
package xrand

import (
	"math"
	"math/rand"
)

// Rand wraps *rand.Rand with the distribution helpers used across the
// simulator. It is NOT safe for concurrent use; derive one per
// goroutine with Split.
//
// The underlying source is splitmix64 rather than math/rand's default
// rngSource: the simulator constructs a fresh stream per
// (engine, sample) pair, and the default source's ~5 KB state array
// would dominate allocation; splitmix64 carries 8 bytes of state with
// excellent statistical quality for this use.
type Rand struct {
	r *rand.Rand
	// mix caches the per-Rand mixing constant consumed by SplitFor.
	mix int64
}

// sm64 is a splitmix64 rand.Source64.
type sm64 struct{ s uint64 }

func (s *sm64) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(seed int64) { s.s = uint64(seed) }

// New returns a Rand seeded with seed.
func New(seed int64) *Rand {
	src := &sm64{s: uint64(seed)}
	// Warm the state so nearby seeds decorrelate immediately.
	src.Uint64()
	return &Rand{r: rand.New(src)}
}

// Split derives an independent Rand from this one. The derived stream
// is a deterministic function of the parent state, so a simulation
// that splits in a fixed order is fully reproducible.
func (x *Rand) Split() *Rand {
	return New(x.r.Int63())
}

// SplitFor derives an independent Rand keyed by an arbitrary string
// (e.g. a sample hash or engine name) mixed with this Rand's next
// value. Using a key decouples the derived stream from how many other
// streams were split before it.
func (x *Rand) SplitFor(key string) *Rand {
	h := fnv64(key)
	return New(int64(h ^ uint64(x.base())))
}

// base returns a stable per-Rand mixing constant. It consumes one
// value from the stream the first time it is needed.
func (x *Rand) base() int64 {
	if x.mix == 0 {
		x.mix = x.r.Int63() | 1
	}
	return x.mix
}

// Float64 returns a uniform value in [0, 1).
func (x *Rand) Float64() float64 { return x.r.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (x *Rand) Intn(n int) int { return x.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit value.
func (x *Rand) Int63() int64 { return x.r.Int63() }

// Bool returns true with probability p.
func (x *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.r.Float64() < p
}

// NormFloat64 returns a standard normal variate.
func (x *Rand) NormFloat64() float64 { return x.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (x *Rand) ExpFloat64() float64 { return x.r.ExpFloat64() }

// Lognormal returns exp(mu + sigma*Z): a right-skewed positive value.
// Used for inter-scan gaps, whose medians are around days but whose
// tails reach hundreds of days (the paper saw gaps up to 418 days).
func (x *Rand) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*x.r.NormFloat64())
}

// Poisson returns a Poisson(lambda) count using Knuth's method for
// small lambda and a normal approximation for large lambda. lambda
// must be >= 0.
func (x *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(lambda + math.Sqrt(lambda)*x.r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= x.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a value in {0, 1, 2, ...} with mean
// (1-p)/p. p must be in (0, 1].
func (x *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric requires p in (0, 1]")
	}
	// Inverse-CDF: floor(ln(U) / ln(1-p)).
	u := x.r.Float64()
	for u == 0 {
		u = x.r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// BoundedPareto returns an integer heavy-tail draw in [min, max] with
// tail exponent alpha. It is used for the reports-per-sample tail,
// where most samples have a handful of reports but the maximum in the
// paper's data reached 64,168.
func (x *Rand) BoundedPareto(min, max int, alpha float64) int {
	if min >= max {
		return min
	}
	lo, hi := float64(min), float64(max)+1
	u := x.r.Float64()
	// Inverse CDF of the bounded Pareto distribution.
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	v := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	n := int(v)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// WeightedChoice returns an index in [0, len(weights)) with
// probability proportional to weights[i]. Weights must be
// non-negative with a positive sum.
func (x *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("xrand: WeightedChoice requires positive total weight")
	}
	target := x.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Cumulative is a precomputed cumulative-weight table for repeated
// weighted choices over the same distribution (e.g. the file-type mix,
// drawn hundreds of thousands of times per run).
type Cumulative struct {
	cum []float64
}

// NewCumulative builds a cumulative table. Weights must be
// non-negative with a positive sum.
func NewCumulative(weights []float64) *Cumulative {
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		acc += w
		cum[i] = acc
	}
	if acc <= 0 {
		panic("xrand: NewCumulative requires positive total weight")
	}
	return &Cumulative{cum: cum}
}

// Choose returns an index drawn according to the table's weights.
func (c *Cumulative) Choose(x *Rand) int {
	total := c.cum[len(c.cum)-1]
	target := x.Float64() * total
	// Binary search for the first cumulative weight > target.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] > target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Len returns the number of categories in the table.
func (c *Cumulative) Len() int { return len(c.cum) }

// fnv64 is the FNV-1a hash of s, used to key derived streams.
func fnv64(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
