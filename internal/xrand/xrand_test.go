package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a1 := New(7).Split()
	a2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatalf("split streams from same seed diverged at %d", i)
		}
	}
}

func TestSplitForKeyedStreams(t *testing.T) {
	parent := New(1)
	s1 := parent.SplitFor("sample-a")
	s2 := parent.SplitFor("sample-b")
	same := true
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("SplitFor with different keys produced identical streams")
	}
	// Same key from an identically-seeded parent reproduces the stream.
	p1, p2 := New(9), New(9)
	k1, k2 := p1.SplitFor("x"), p2.SplitFor("x")
	for i := 0; i < 50; i++ {
		if k1.Float64() != k2.Float64() {
			t.Fatal("SplitFor not reproducible for equal seed and key")
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	x := New(3)
	for i := 0; i < 100; i++ {
		if x.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !x.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	x := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestPoissonMean(t *testing.T) {
	x := New(5)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += x.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%.1f) mean = %.3f", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	x := New(5)
	for i := 0; i < 10; i++ {
		if got := x.Poisson(0); got != 0 {
			t.Fatalf("Poisson(0) = %d", got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	x := New(6)
	p := 0.25
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += x.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(0.25) mean = %.3f, want %.3f", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	x := New(6)
	if got := x.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	x := New(8)
	const min, max = 2, 64168
	for i := 0; i < 100000; i++ {
		v := x.BoundedPareto(min, max, 1.8)
		if v < min || v > max {
			t.Fatalf("BoundedPareto out of range: %d", v)
		}
	}
}

func TestBoundedParetoHeavyTailShape(t *testing.T) {
	x := New(8)
	const n = 200000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		v := x.BoundedPareto(2, 64168, 1.8)
		if v <= 4 {
			small++
		}
		if v > 1000 {
			large++
		}
	}
	if float64(small)/n < 0.5 {
		t.Fatalf("expected most draws near the minimum, got %.3f <= 4", float64(small)/n)
	}
	if large == 0 {
		t.Fatal("expected at least one draw deep in the tail")
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	x := New(8)
	if got := x.BoundedPareto(5, 5, 2); got != 5 {
		t.Fatalf("BoundedPareto(5,5) = %d", got)
	}
}

func TestLognormalMedian(t *testing.T) {
	x := New(13)
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = x.Lognormal(math.Log(17), 1.2)
	}
	// Median of lognormal(mu, sigma) is exp(mu) = 17.
	below := 0
	for _, v := range vals {
		if v < 17 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %.4f, want ~0.5", frac)
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	x := New(21)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[x.WeightedChoice(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero total weight")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestCumulativeMatchesWeightedChoice(t *testing.T) {
	weights := []float64{2, 0, 5, 3}
	cum := NewCumulative(weights)
	x := New(33)
	counts := make([]int, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[cum.Choose(x)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category chosen %d times", counts[1])
	}
	total := 10.0
	for i, w := range weights {
		got := float64(counts[i]) / n
		if math.Abs(got-w/total) > 0.01 {
			t.Fatalf("category %d frequency = %.4f, want %.4f", i, got, w/total)
		}
	}
}

func TestCumulativePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	NewCumulative([]float64{1, -1})
}

func TestCumulativeLen(t *testing.T) {
	if got := NewCumulative([]float64{1, 2, 3}).Len(); got != 3 {
		t.Fatalf("Len = %d", got)
	}
}

// Property: Bool(p) for p in (0,1) never panics and WeightedChoice
// always returns a valid index.
func TestQuickWeightedChoiceIndexInRange(t *testing.T) {
	f := func(seed int64, a, b, c uint8) bool {
		w := []float64{float64(a) + 1, float64(b), float64(c)}
		i := New(seed).WeightedChoice(w)
		return i >= 0 && i < 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BoundedPareto always stays within bounds for arbitrary
// seeds and valid parameters.
func TestQuickBoundedParetoInBounds(t *testing.T) {
	f := func(seed int64, span uint16) bool {
		min := 1
		max := min + int(span)
		v := New(seed).BoundedPareto(min, max, 1.5)
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
