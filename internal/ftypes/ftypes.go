// Package ftypes centralizes the VirusTotal file-type vocabulary used
// across the simulator and the analyses: the paper's top-20 types
// (Table 3) with their observed sample/report shares, the PE subset
// used by §5.4.3, and the long tail ("Others"/NULL) the workload
// generator draws for the remaining ~12% of samples.
package ftypes

// The top-20 file types by sample count, exactly as VT labels them
// (Table 3 of the paper).
const (
	Win32EXE  = "Win32 EXE"
	TXT       = "TXT"
	HTML      = "HTML"
	ZIP       = "ZIP"
	PDF       = "PDF"
	XML       = "XML"
	Win32DLL  = "Win32 DLL"
	JSON      = "JSON"
	DEX       = "DEX"
	ELFExe    = "ELF executable"
	Win64EXE  = "Win64 EXE"
	Win64DLL  = "Win64 DLL"
	ELFShared = "ELF shared library"
	EPUB      = "EPUB"
	LNK       = "LNK"
	FPX       = "FPX"
	PHP       = "PHP"
	DOCX      = "DOCX"
	GZIP      = "GZIP"
	JPEG      = "JPEG"
	// NULL is VT's label for samples with no identified type (9.6% of
	// the paper's dataset).
	NULL = "NULL"
)

// TypeShare is one row of the file-type mix: a type label with its
// share of samples and (distinct) share of reports from Table 3.
type TypeShare struct {
	Type          string
	SampleShare   float64 // fraction of all samples
	ReportShare   float64 // fraction of all reports
	MalwareRatio  float64 // calibrated latent ground-truth malware fraction
	MeanSizeBytes int64   // typical file size for the type
}

// Top20 lists the paper's top-20 file types with their Table 3 sample
// and report shares, plus the calibrated malware ratio and typical
// size used by the workload generator. Executable formats carry much
// higher malware ratios than data formats — this is what drives the
// per-type dynamics differences of Figure 6 and the flip-ratio
// contrasts of Figure 10.
var Top20 = []TypeShare{
	{Win32EXE, 0.252139, 0.290929, 0.82, 1 << 20},
	{TXT, 0.128777, 0.112702, 0.36, 64 << 10},
	{HTML, 0.097600, 0.077549, 0.42, 96 << 10},
	{ZIP, 0.055398, 0.098682, 0.52, 2 << 20},
	{PDF, 0.039489, 0.046412, 0.42, 512 << 10},
	{XML, 0.038589, 0.028074, 0.20, 48 << 10},
	{Win32DLL, 0.027766, 0.074583, 0.78, 768 << 10},
	{JSON, 0.025284, 0.020940, 0.13, 16 << 10},
	{DEX, 0.022345, 0.020762, 0.62, 4 << 20},
	{ELFExe, 0.019266, 0.014847, 0.68, 256 << 10},
	{Win64EXE, 0.014529, 0.033962, 0.78, 2 << 20},
	{Win64DLL, 0.011879, 0.020683, 0.72, 1 << 20},
	{ELFShared, 0.010139, 0.007675, 0.30, 128 << 10},
	{EPUB, 0.009268, 0.010647, 0.15, 1 << 20},
	{LNK, 0.008612, 0.006650, 0.58, 4 << 10},
	{FPX, 0.007643, 0.006681, 0.10, 256 << 10},
	{PHP, 0.006959, 0.005057, 0.48, 24 << 10},
	{DOCX, 0.003792, 0.004099, 0.52, 256 << 10},
	{GZIP, 0.003790, 0.004077, 0.42, 1 << 20},
	{JPEG, 0.003547, 0.003318, 0.08, 512 << 10},
}

// NullShare and OthersShare complete the mix: NULL-typed samples
// (9.6048%) and the aggregated long tail (11.714%).
const (
	NullShare   = 0.096048
	OthersShare = 0.117140
)

// Others is the synthetic label the generator uses for the aggregated
// long tail of the remaining 331 types.
const Others = "Others"

// PETypes is the PE subset of §5.4.3: Win32 EXE, Win32 DLL,
// Win64 EXE, Win64 DLL.
var PETypes = []string{Win32EXE, Win32DLL, Win64EXE, Win64DLL}

// IsPE reports whether the type belongs to the PE family.
func IsPE(fileType string) bool {
	for _, t := range PETypes {
		if t == fileType {
			return true
		}
	}
	return false
}

// Top20Names returns just the type labels of Top20, in Table 3 order.
func Top20Names() []string {
	names := make([]string, len(Top20))
	for i, ts := range Top20 {
		names[i] = ts.Type
	}
	return names
}

// IsTop20 reports whether the type is one of the paper's top 20.
func IsTop20(fileType string) bool {
	for _, ts := range Top20 {
		if ts.Type == fileType {
			return true
		}
	}
	return false
}

// Share returns the TypeShare row for the type, if it is a top-20
// type.
func Share(fileType string) (TypeShare, bool) {
	for _, ts := range Top20 {
		if ts.Type == fileType {
			return ts, true
		}
	}
	return TypeShare{}, false
}
