package ftypes

import (
	"math"
	"testing"
)

func TestTop20HasTwentyRows(t *testing.T) {
	if len(Top20) != 20 {
		t.Fatalf("Top20 has %d rows", len(Top20))
	}
	if len(Top20Names()) != 20 {
		t.Fatalf("Top20Names has %d entries", len(Top20Names()))
	}
}

func TestSharesMatchPaperTable3(t *testing.T) {
	// Spot-check the Table 3 sample shares embedded in the mix.
	checks := map[string]float64{
		Win32EXE: 0.252139,
		TXT:      0.128777,
		JPEG:     0.003547,
	}
	for ft, want := range checks {
		ts, ok := Share(ft)
		if !ok {
			t.Fatalf("missing %s", ft)
		}
		if math.Abs(ts.SampleShare-want) > 1e-9 {
			t.Fatalf("%s share = %v, want %v", ft, ts.SampleShare, want)
		}
	}
}

func TestSharesSumWithTailToOne(t *testing.T) {
	sum := NullShare + OthersShare
	for _, ts := range Top20 {
		sum += ts.SampleShare
	}
	if math.Abs(sum-1) > 0.001 {
		t.Fatalf("mix sums to %v, want ~1", sum)
	}
}

func TestSharesDescending(t *testing.T) {
	for i := 1; i < len(Top20); i++ {
		if Top20[i].SampleShare > Top20[i-1].SampleShare {
			t.Fatalf("Top20 not in descending sample-share order at %d", i)
		}
	}
}

func TestIsPE(t *testing.T) {
	for _, ft := range PETypes {
		if !IsPE(ft) {
			t.Fatalf("IsPE(%s) = false", ft)
		}
	}
	for _, ft := range []string{TXT, HTML, ELFExe, DEX, NULL, Others} {
		if IsPE(ft) {
			t.Fatalf("IsPE(%s) = true", ft)
		}
	}
}

func TestIsTop20(t *testing.T) {
	if !IsTop20(Win32EXE) || !IsTop20(JPEG) {
		t.Fatal("top-20 member not recognized")
	}
	if IsTop20(NULL) || IsTop20(Others) || IsTop20("Mach-O") {
		t.Fatal("non-top-20 type recognized")
	}
}

func TestShareMissing(t *testing.T) {
	if _, ok := Share("Mach-O"); ok {
		t.Fatal("Share returned ok for unknown type")
	}
}

func TestMalwareRatiosOrdering(t *testing.T) {
	// Executables must carry higher latent malware ratios than media
	// formats — this drives the per-type dynamics spread (Figure 6).
	exe, _ := Share(Win32EXE)
	jpeg, _ := Share(JPEG)
	jsonTS, _ := Share(JSON)
	if exe.MalwareRatio <= jpeg.MalwareRatio || exe.MalwareRatio <= jsonTS.MalwareRatio {
		t.Fatalf("EXE ratio %v should exceed JPEG %v and JSON %v",
			exe.MalwareRatio, jpeg.MalwareRatio, jsonTS.MalwareRatio)
	}
	for _, ts := range Top20 {
		if ts.MalwareRatio <= 0 || ts.MalwareRatio >= 1 {
			t.Fatalf("%s malware ratio out of range: %v", ts.Type, ts.MalwareRatio)
		}
		if ts.MeanSizeBytes <= 0 {
			t.Fatalf("%s mean size not positive", ts.Type)
		}
	}
}
