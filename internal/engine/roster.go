package engine

import "vtdynamics/internal/ftypes"

// This file defines the default 72-engine roster. Parameter choices
// are calibrated so the analyses over the default workload reproduce
// the shapes of the paper's figures:
//
//   - Correlated groups (Figures 11–12, Tables 4–8) come from the
//     Copies rules below, with per-file-type fidelities creating the
//     per-type group differences the paper highlights (Cyren–Fortinet
//     only on PE, Avira–Cynet absent on PE, Lionic–VirIT only on
//     GZIP, Avast-Mobile joining the Avast group only on DEX, the
//     BitDefender group shrinking on ZIP).
//   - Flip personalities (Figure 10) come from InstantRate, FPRate
//     and latency: Arcabit flips heavily on ELF and almost never on
//     DEX; F-Secure and Lionic are flip-prone; Jiangmin and AhnLab
//     are stable; Microsoft flips a non-trivial amount despite its
//     reputation.
//   - Per-type detect rates make executables attract far higher
//     AV-Ranks than data formats (drives Figure 6's spread).

// detectByType is the shared per-type detection profile: engines are
// good at executables and weak at data formats.
func detectByType(scale float64) PerType {
	return withTypes(0.62*scale, map[string]float64{
		ftypes.Win32EXE:  0.88 * scale,
		ftypes.Win32DLL:  0.85 * scale,
		ftypes.Win64EXE:  0.85 * scale,
		ftypes.Win64DLL:  0.82 * scale,
		ftypes.ELFExe:    0.66 * scale,
		ftypes.DEX:       0.60 * scale,
		ftypes.LNK:       0.58 * scale,
		ftypes.DOCX:      0.55 * scale,
		ftypes.PHP:       0.52 * scale,
		ftypes.HTML:      0.50 * scale,
		ftypes.PDF:       0.48 * scale,
		ftypes.ZIP:       0.46 * scale,
		ftypes.TXT:       0.40 * scale,
		ftypes.GZIP:      0.36 * scale,
		ftypes.ELFShared: 0.34 * scale,
		ftypes.XML:       0.30 * scale,
		ftypes.EPUB:      0.26 * scale,
		ftypes.JSON:      0.22 * scale,
		ftypes.FPX:       0.20 * scale,
		ftypes.JPEG:      0.18 * scale,
		ftypes.NULL:      0.30 * scale,
		ftypes.Others:    0.35 * scale,
	})
}

// instantByType is the shared per-type instant-detection profile:
// lower values produce more observable 0→1 drift. Executables see
// the most signature churn, data formats the least (Figure 6).
var defaultInstant = withTypes(0.80, map[string]float64{
	ftypes.Win32EXE:  0.62,
	ftypes.Win32DLL:  0.58,
	ftypes.Win64EXE:  0.64,
	ftypes.Win64DLL:  0.64,
	ftypes.ELFExe:    0.68,
	ftypes.ZIP:       0.70,
	ftypes.TXT:       0.72,
	ftypes.HTML:      0.72,
	ftypes.DEX:       0.78,
	ftypes.PDF:       0.76,
	ftypes.JPEG:      0.94,
	ftypes.FPX:       0.94,
	ftypes.EPUB:      0.92,
	ftypes.JSON:      0.90,
	ftypes.ELFShared: 0.90,
	ftypes.GZIP:      0.88,
	ftypes.PHP:       0.86,
	ftypes.XML:       0.86,
})

// base returns the default engine parameterization; per-engine
// entries below override fields.
func base(name, prefix string) Spec {
	return Spec{
		Name:            name,
		DetectRate:      detectByType(1.0),
		LatencyMeanDays: uniform(9),
		FPRate:          uniform(0.005),
		FPClearMeanDays: 25,
		ActivityRate:    0.995,
		RetractProb:     uniform(0.10),
		RetractMeanDays: 25,
		UpdateMeanDays:  14,
		UpdateCoupling:  0.20,
		HazardProb:      2e-6,
		InstantRate:     defaultInstant,
		LabelPrefix:     prefix,
	}
}

// copyAll makes a rule copying from leader for every file type.
func copyAll(leader string, fidelity float64) CopyRule {
	return CopyRule{From: leader, Fidelity: uniform(fidelity)}
}

// copyTypes makes a rule active only for the listed file types.
func copyTypes(leader string, fidelity float64, types ...string) CopyRule {
	m := make(map[string]float64, len(types))
	for _, t := range types {
		m[t] = fidelity
	}
	return CopyRule{From: leader, Fidelity: withTypes(0, m)}
}

// DefaultRoster returns the 72-engine roster described above.
func DefaultRoster() []Spec {
	pe := ftypes.PETypes

	specs := []Spec{
		// ---- Group leaders (independent engines) -------------------
		base("Avast", "Win32:Malware-gen"),
		base("BitDefender", "Trojan.GenericKD"),
		base("K7GW", "Trojan"),
		base("TrendMicro", "TROJ_GEN"),
		base("F-Prot", "W32/Felix"),
		base("Paloalto", "generic.ml"),
		base("CrowdStrike", "win/malicious_confidence"),
		base("Avira", "TR/Dropper.Gen"),
		base("McAfee", "Artemis!"),
		base("Fortinet", "W32/Generic"),
		base("AhnLab-V3", "Trojan/Win32"),
		base("Lionic", "Trojan.Multi.Generic"),

		// ---- Avast group (Fig. 11: Avast–AVG 0.9814) ---------------
		func() Spec {
			s := base("AVG", "Win32:Malware-gen")
			s.Copies = []CopyRule{copyAll("Avast", 0.97)}
			return s
		}(),
		// Avast-Mobile joins the Avast group only on DEX (Table: AVG &
		// Avast-Mobile 0.9567 for DEX).
		func() Spec {
			s := base("Avast-Mobile", "Android:Evo-gen")
			s.DetectRate = withTypes(0.02, map[string]float64{ftypes.DEX: 0.65})
			// A mobile scanner mostly abstains outside Android
			// payloads ("type-unsupported" in real reports).
			s.TypeSupport = withTypes(0.10, map[string]float64{
				ftypes.DEX: 1, ftypes.ZIP: 0.8,
			})
			s.Copies = []CopyRule{copyTypes("Avast", 0.95, ftypes.DEX)}
			return s
		}(),

		// ---- BitDefender group (Tables 4–8 Group 3) ----------------
		// MicroWorld-eScan, ALYac and Ad-Aware drop below the strong
		// threshold for ZIP (Table 7's group omits them).
		func() Spec {
			s := base("MicroWorld-eScan", "Trojan.GenericKD")
			s.Copies = []CopyRule{{From: "BitDefender",
				Fidelity: withTypes(0.96, map[string]float64{ftypes.ZIP: 0.45})}}
			return s
		}(),
		func() Spec {
			s := base("GData", "Trojan.GenericKD")
			s.Copies = []CopyRule{copyAll("BitDefender", 0.95)}
			return s
		}(),
		func() Spec {
			s := base("FireEye", "Generic.mg")
			s.Copies = []CopyRule{copyAll("BitDefender", 0.95)}
			return s
		}(),
		func() Spec {
			s := base("MAX", "malware (ai score)")
			s.Copies = []CopyRule{copyAll("BitDefender", 0.94)}
			return s
		}(),
		func() Spec {
			s := base("ALYac", "Trojan.GenericKD")
			s.Copies = []CopyRule{{From: "BitDefender",
				Fidelity: withTypes(0.93, map[string]float64{ftypes.ZIP: 0.40})}}
			return s
		}(),
		func() Spec {
			s := base("Ad-Aware", "Trojan.GenericKD")
			s.Copies = []CopyRule{{From: "BitDefender",
				Fidelity: withTypes(0.93, map[string]float64{ftypes.ZIP: 0.40})}}
			return s
		}(),
		func() Spec {
			s := base("Emsisoft", "Trojan.GenericKD (B)")
			s.Copies = []CopyRule{copyAll("BitDefender", 0.92)}
			return s
		}(),

		// ---- K7 group; ESET joins only on PE and HTML (Table 4 vs 5)
		func() Spec {
			s := base("K7AntiVirus", "Trojan ( 0052 )")
			s.Copies = []CopyRule{copyAll("K7GW", 0.95)}
			return s
		}(),
		func() Spec {
			s := base("ESET-NOD32", "a variant of Win32/Agent")
			s.Copies = []CopyRule{copyTypes("K7GW", 0.86,
				append(append([]string{}, pe...), ftypes.HTML)...)}
			return s
		}(),

		// ---- TrendMicro pair ---------------------------------------
		func() Spec {
			s := base("TrendMicro-HouseCall", "TROJ_GEN")
			s.Copies = []CopyRule{copyAll("TrendMicro", 0.93)}
			return s
		}(),

		// ---- F-Prot pair (Babable–F-Prot 0.9698) -------------------
		func() Spec {
			s := base("Babable", "Malware.W32")
			s.Copies = []CopyRule{copyAll("F-Prot", 0.97)}
			return s
		}(),

		// ---- Paloalto–APEX (strongest pair: 0.9933) ----------------
		func() Spec {
			s := base("APEX", "Malicious")
			s.Copies = []CopyRule{copyAll("Paloalto", 0.993)}
			return s
		}(),

		// ---- Webroot–CrowdStrike (0.9754); Alibaba joins on TXT ----
		func() Spec {
			s := base("Webroot", "W32.Malware.Gen")
			s.Copies = []CopyRule{copyAll("CrowdStrike", 0.975)}
			return s
		}(),
		func() Spec {
			s := base("Alibaba", "Trojan:Win32/Generic")
			s.Copies = []CopyRule{copyTypes("CrowdStrike", 0.88, ftypes.TXT)}
			return s
		}(),

		// ---- Avira–Cynet: strong overall, NOT on PE (Appendix 2) ---
		func() Spec {
			s := base("Cynet", "Malicious (score: 99)")
			fid := withTypes(0.975, nil)
			fid.ByType = map[string]float64{}
			for _, t := range pe {
				fid.ByType[t] = 0.45
			}
			s.Copies = []CopyRule{{From: "Avira", Fidelity: fid}}
			return s
		}(),

		// ---- McAfee pair: strong only on DEX -----------------------
		func() Spec {
			s := base("McAfee-GW-Edition", "BehavesLike.Win32.Generic")
			s.Copies = []CopyRule{{From: "McAfee",
				Fidelity: withTypes(0.62, map[string]float64{ftypes.DEX: 0.86})}}
			return s
		}(),

		// ---- Cyren: BitDefender group on HTML, Fortinet pair on PE -
		func() Spec {
			s := base("Cyren", "W32/Trojan")
			s.Copies = []CopyRule{
				copyTypes("Fortinet", 0.90, pe...),
				copyTypes("BitDefender", 0.90, ftypes.HTML),
			}
			return s
		}(),

		// ---- HTML-only cluster around AhnLab-V3 (Table 6 Group 5/6) -
		func() Spec {
			s := base("Rising", "Trojan.Generic")
			s.Copies = []CopyRule{copyTypes("AhnLab-V3", 0.87, ftypes.HTML)}
			return s
		}(),
		func() Spec {
			s := base("NANO-Antivirus", "Trojan.Win32.Generic")
			s.Copies = []CopyRule{copyTypes("AhnLab-V3", 0.86, ftypes.HTML)}
			return s
		}(),
		func() Spec {
			s := base("CAT-QuickHeal", "Trojan.Generic")
			s.Copies = []CopyRule{copyTypes("AhnLab-V3", 0.85, ftypes.HTML)}
			return s
		}(),

		// ---- Lionic–VirIT: strong only on GZIP (0.8896) ------------
		func() Spec {
			s := base("VirIT", "Trojan.Win32.Generic")
			s.Copies = []CopyRule{copyTypes("Lionic", 0.89, ftypes.GZIP)}
			return s
		}(),
	}

	// ---- Flip personalities (Figure 10) ------------------------------
	// Arcabit: extreme flip ratio on ELF executables (25.78%), almost
	// none on DEX (0.05%).
	arcabit := base("Arcabit", "Trojan.Generic.D")
	arcabit.InstantRate = withTypes(0.80, map[string]float64{
		ftypes.ELFExe: 0.02, ftypes.DEX: 0.999,
	})
	arcabit.LatencyMeanDays = withTypes(9, map[string]float64{ftypes.ELFExe: 7})
	arcabit.DetectRate = detectByType(1.0)
	arcabit.DetectRate.ByType[ftypes.ELFExe] = 0.95
	arcabit.FPRate = withTypes(0.005, map[string]float64{
		ftypes.ELFExe: 0.30, ftypes.DEX: 0.0001,
	})
	arcabit.RetractProb = withTypes(0.10, map[string]float64{ftypes.DEX: 0.0005})
	arcabit.FPClearMeanDays = 10
	specs = append(specs, arcabit)

	// F-Secure and Lionic: flip-prone across the board.
	fsecure := base("F-Secure", "Trojan.TR/Dropper.Gen")
	fsecure.InstantRate = uniform(0.45)
	fsecure.FPRate = uniform(0.012)
	specs = append(specs, fsecure)
	// (Lionic is a leader above; make it flip-prone in place.)
	for i := range specs {
		if specs[i].Name == "Lionic" {
			specs[i].InstantRate = uniform(0.48)
			specs[i].FPRate = uniform(0.011)
		}
	}

	// Jiangmin and AhnLab: very stable.
	jiangmin := base("Jiangmin", "Trojan.Generic")
	jiangmin.InstantRate = uniform(0.985)
	jiangmin.FPRate = uniform(0.0003)
	specs = append(specs, jiangmin)
	ahnlab := base("AhnLab", "Trojan/Win.Generic")
	ahnlab.InstantRate = uniform(0.985)
	ahnlab.FPRate = uniform(0.0003)
	specs = append(specs, ahnlab)

	// Microsoft: reputable but with a visible number of flips (§7.1.2).
	microsoft := base("Microsoft", "Trojan:Win32/Wacatac")
	microsoft.InstantRate = uniform(0.66)
	microsoft.FPRate = uniform(0.006)
	specs = append(specs, microsoft)

	// ---- Independent filler engines to reach the 70+ roster ----------
	independents := []struct {
		name, prefix string
		scale        float64 // detection capability scale
	}{
		{"Kaspersky", "HEUR:Trojan.Win32.Generic", 1.05},
		{"Symantec", "ML.Attribute.HighConfidence", 1.0},
		{"Sophos", "Mal/Generic-S", 1.0},
		{"ClamAV", "Win.Trojan.Generic", 0.72},
		{"Comodo", "Malware@#", 0.85},
		{"DrWeb", "Trojan.Siggen", 0.95},
		{"Ikarus", "Trojan.Win32.Krypt", 0.92},
		{"Zillya", "Trojan.Agent.Win32", 0.80},
		{"VBA32", "BScope.Trojan.Agent", 0.78},
		{"ViRobot", "Trojan.Win32.Agent", 0.75},
		{"TotalDefense", "Win32/Tnega", 0.70},
		{"SUPERAntiSpyware", "Trojan.Agent/Gen", 0.60},
		{"Malwarebytes", "Malware.AI", 0.88},
		{"Panda", "Trj/GdSda.A", 0.85},
		{"Tencent", "Win32.Trojan.Generic", 0.90},
		{"Baidu", "Win32.Trojan.Agent", 0.70},
		{"Qihoo-360", "HEUR/QVM", 0.92},
		{"Yandex", "Trojan.Agent!", 0.80},
		{"ZoneAlarm", "HEUR:Trojan.Win32.Generic", 0.95},
		{"Bkav", "W32.AIDetect.malware", 0.68},
		{"CMC", "Trojan.Win32.Generic", 0.55},
		{"MaxSecure", "Trojan.Malware.Gen", 0.72},
		{"Acronis", "suspicious", 0.75},
		{"Cylance", "Unsafe", 0.90},
		{"SentinelOne", "Static AI - Malicious", 0.92},
		{"Elastic", "malicious (high confidence)", 0.90},
		{"Trapmine", "malicious.high.ml.score", 0.78},
		{"eGambit", "Unsafe.AI_Score", 0.70},
		{"Antiy-AVL", "Trojan/Generic", 0.85},
		{"Gridinsoft", "Trojan.Heur!", 0.74},
		{"Sangfor", "Trojan.Win32.Save.a", 0.82},
		{"Zoner", "Probably Heur", 0.52},
		{"TACHYON", "Trojan/W32.Agent", 0.62},
		{"Xcitium", "Malware@#gen", 0.66},
		{"ZeroFox", "generic.heur", 0.58},
		{"Skyhigh", "BehavesLike.Win32", 0.84},
	}
	for _, ind := range independents {
		s := base(ind.name, ind.prefix)
		s.DetectRate = detectByType(ind.scale)
		specs = append(specs, s)
	}

	return specs
}
