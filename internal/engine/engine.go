package engine

import (
	"fmt"
	"sort"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/xrand"
)

// Engine is an instantiated engine model: a Spec plus its realized
// signature-update schedule over the simulation window.
type Engine struct {
	Spec
	seed int64
	// updates holds the realized Poisson update instants, ascending.
	updates []time.Time
	// leaders[i] is the resolved engine for Copies[i].
	leaders []*Engine
}

// newEngine realizes the update schedule for the window [start, end).
func newEngine(spec Spec, seed int64, start, end time.Time) *Engine {
	e := &Engine{Spec: spec, seed: seed}
	rng := xrand.New(seed).SplitFor("updates|" + spec.Name)
	if spec.UpdateMeanDays > 0 {
		t := start
		for {
			gapDays := rng.ExpFloat64() * spec.UpdateMeanDays
			t = t.Add(time.Duration(gapDays * float64(24*time.Hour)))
			if !t.Before(end) {
				break
			}
			e.updates = append(e.updates, t)
		}
	}
	return e
}

// VersionAt returns the engine's signature version at instant t: the
// number of update events at or before t, plus one (versions start at
// 1). Reports embed this so analyses can test update-coincidence of
// flips.
func (e *Engine) VersionAt(t time.Time) int {
	i := sort.Search(len(e.updates), func(i int) bool { return e.updates[i].After(t) })
	return i + 1
}

// NumUpdates returns the number of realized update events.
func (e *Engine) NumUpdates() int { return len(e.updates) }

// nextUpdateAfter returns the first update instant at or after t, and
// whether one exists inside the window.
func (e *Engine) nextUpdateAfter(t time.Time) (time.Time, bool) {
	i := sort.Search(len(e.updates), func(i int) bool { return !e.updates[i].Before(t) })
	if i == len(e.updates) {
		return time.Time{}, false
	}
	return e.updates[i], true
}

// pairRand returns the deterministic latent-variable stream for this
// (engine, sample) pair.
func (e *Engine) pairRand(sha string) *xrand.Rand {
	return xrand.New(e.seed).SplitFor(e.Name + "|" + sha)
}

// latent describes the engine's sticky verdict trajectory for one
// sample: Benign before convertAt, Malicious in [convertAt, clearAt)
// — with clearAt zero meaning "forever" — plus an optional hazard
// excursion window during which the verdict temporarily regresses.
type latent struct {
	everDetects  bool
	convertAt    time.Time
	clearAt      time.Time // zero: never clears
	hazardStart  time.Time // zero: no hazard excursion
	hazardEnd    time.Time
	hazardActive bool
}

// trajectory derives the sample's latent verdict trajectory from the
// pair stream. It is a pure function of (engine, sample).
func (e *Engine) trajectory(t Target) latent {
	rng := e.pairRand(t.SHA256)
	var l latent
	const day = 24 * time.Hour
	if t.Malicious {
		p := e.DetectRate.Of(t.FileType) * t.Detectability
		l.everDetects = rng.Bool(p)
		if !l.everDetects {
			return l
		}
		// The fraction of eventual detectors that are delayed depends
		// on the sample's circulation, a property of the sample shared
		// by every engine: well-circulated strains are in most
		// signature databases on day one, brand-new strains drift for
		// weeks. This per-sample mixture produces the right-skewed Δ
		// distributions of Figures 5–6 (low medians, heavy tails).
		delayed := (1 - e.InstantRate.Of(t.FileType)) * noveltyScale(t.SHA256)
		if delayed > 0.90 {
			delayed = 0.90
		}
		if !rng.Bool(delayed) {
			// Detection active from first sight: no observable flip.
			l.convertAt = t.FirstSeen
			if rng.Bool(e.RetractProb.Of(t.FileType)) {
				// The detection is later cleaned up — an over-broad
				// heuristic being retracted, the main source of 1→0
				// flips on genuinely malicious samples. Retraction
				// only applies to first-sight detections: the label
				// sequence is then 1..1→0..0, a plain down flip. A
				// retraction after an observed 0→1 would be a hazard
				// pattern, which the paper found to be vanishingly
				// rare (9 in 16.8M flips).
				mean := e.RetractMeanDays
				if mean <= 0 {
					mean = 30
				}
				clearDays := rng.ExpFloat64() * mean
				l.clearAt = l.convertAt.Add(time.Duration(clearDays * float64(day)))
			}
		} else {
			mean := e.LatencyMeanDays.Of(t.FileType)
			if rng.Bool(0.08) {
				// Slow-learner tail: some engines take months, which
				// sustains the diff-vs-interval growth of Figure 7.
				mean *= 4
			}
			delayDays := rng.ExpFloat64() * mean
			conv := t.FirstSeen.Add(time.Duration(delayDays * float64(day)))
			if rng.Bool(e.UpdateCoupling) {
				if up, ok := e.nextUpdateAfter(conv); ok {
					conv = up
				}
			}
			l.convertAt = conv
		}
	} else {
		if !rng.Bool(e.FPRate.Of(t.FileType)) {
			return l
		}
		l.everDetects = true
		// False positives usually fire from the first scan.
		l.convertAt = t.FirstSeen
		clearDays := rng.ExpFloat64() * e.FPClearMeanDays
		l.clearAt = l.convertAt.Add(time.Duration(clearDays * float64(day)))
	}
	// Rare hazard excursion: verdict regresses for a short window
	// after conversion, then returns — the source of the paper's
	// nine observed hazard flips.
	if rng.Bool(e.HazardProb) {
		l.hazardActive = true
		startDays := 1 + rng.ExpFloat64()*10
		lenDays := 1 + rng.ExpFloat64()*5
		l.hazardStart = l.convertAt.Add(time.Duration(startDays * float64(day)))
		l.hazardEnd = l.hazardStart.Add(time.Duration(lenDays * float64(day)))
	}
	return l
}

// verdictAt evaluates the latent trajectory at an instant.
func (l latent) verdictAt(scanAt time.Time) report.Verdict {
	if !l.everDetects {
		return report.Benign
	}
	if scanAt.Before(l.convertAt) {
		return report.Benign
	}
	if !l.clearAt.IsZero() && !scanAt.Before(l.clearAt) {
		return report.Benign
	}
	if l.hazardActive && !scanAt.Before(l.hazardStart) && scanAt.Before(l.hazardEnd) {
		// Temporary regression.
		return report.Benign
	}
	return report.Malicious
}

// stickyVerdict returns the engine's own latent verdict for the
// sample at instant scanAt, ignoring activity and copying.
func (e *Engine) stickyVerdict(t Target, scanAt time.Time) report.Verdict {
	return e.trajectory(t).verdictAt(scanAt)
}

// resolvedTrajectory returns the latent trajectory after applying the
// group-copy rules: the first rule applicable to the sample's file
// type wins a per-sample coin with its fidelity, in which case the
// leader's trajectory is used.
func (e *Engine) resolvedTrajectory(t Target) latent {
	for i, rule := range e.Copies {
		f := rule.Fidelity.Of(t.FileType)
		if f <= 0 {
			continue
		}
		rng := e.pairRand(t.SHA256 + "|copy|" + rule.From)
		if rng.Bool(f) {
			return e.leaders[i].trajectory(t)
		}
		break // the applicable rule's coin failed: fall through to own process
	}
	return e.trajectory(t)
}

// pairSeed derives the integer seed keying the (engine, sample)
// activity hash.
func (e *Engine) pairSeed(sha string) uint64 {
	return fnv64(e.Name+"|act|"+sha) ^ uint64(e.seed)
}

// activeAt draws the engine's per-scan participation as a stateless
// hash of the pair seed and the scan instant: idempotent for repeated
// reads of the same scan, independent across scans.
func (e *Engine) activeAt(pair uint64, scanAt time.Time) bool {
	if e.ActivityRate >= 1 {
		return true
	}
	x := mix64(pair ^ uint64(scanAt.Unix())*0x9E3779B97F4A7C15)
	u := float64(x>>11) / (1 << 53)
	return u < e.ActivityRate
}

// Evaluate produces the engine's result for one scan of the target at
// scanAt. Equivalent to EvaluateSeries with a single instant.
func (e *Engine) Evaluate(t Target, scanAt time.Time) report.EngineResult {
	return e.EvaluateSeries(t, []time.Time{scanAt})[0]
}

// supportsType draws whether the engine scans this sample's type at
// all (a per-pair latent: an engine either handles the file or it
// does not, consistently across rescans).
func (e *Engine) supportsType(t Target) bool {
	p := 1.0
	if e.TypeSupport.Default != 0 || e.TypeSupport.ByType != nil {
		p = e.TypeSupport.Of(t.FileType)
	}
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	u := float64(mix64(fnv64(e.Name+"|support|"+t.SHA256))>>11) / (1 << 53)
	return u < p
}

// EvaluateSeries produces the engine's results for every scan instant
// of one sample. The latent trajectory and family label are derived
// once, so evaluating a whole history costs little more than a single
// scan; this is the hot path of large experiments.
func (e *Engine) EvaluateSeries(t Target, times []time.Time) []report.EngineResult {
	if !e.supportsType(t) {
		out := make([]report.EngineResult, len(times))
		for i, at := range times {
			out[i] = report.EngineResult{
				Engine:           e.Name,
				Verdict:          report.Undetected,
				SignatureVersion: e.VersionAt(at),
			}
		}
		return out
	}
	traj := e.resolvedTrajectory(t)
	pair := e.pairSeed(t.SHA256)
	label := ""
	out := make([]report.EngineResult, len(times))
	for i, at := range times {
		res := report.EngineResult{
			Engine:           e.Name,
			SignatureVersion: e.VersionAt(at),
		}
		if !e.activeAt(pair, at) {
			res.Verdict = report.Undetected
			out[i] = res
			continue
		}
		res.Verdict = traj.verdictAt(at)
		if res.Verdict == report.Malicious {
			if label == "" {
				label = e.familyLabel(t)
			}
			res.Label = label
		}
		out[i] = res
	}
	return out
}

// familyLabel synthesizes a stable family label for a detection.
func (e *Engine) familyLabel(t Target) string {
	prefix := e.LabelPrefix
	if prefix == "" {
		prefix = "Gen"
	}
	h := uint32(0)
	for i := 0; i < len(t.SHA256); i++ {
		h = h*31 + uint32(t.SHA256[i])
	}
	return fmt.Sprintf("%s.%s.%04x", prefix, sanitizeType(t.FileType), h&0xffff)
}

func sanitizeType(ft string) string {
	out := make([]byte, 0, len(ft))
	for i := 0; i < len(ft); i++ {
		c := ft[i]
		if c == ' ' {
			continue
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "File"
	}
	return string(out)
}

// Set is a roster of engines sharing one simulation window and seed.
type Set struct {
	engines []*Engine
	byName  map[string]*Engine
}

// NewSet instantiates the given specs over [start, end) with the given
// seed, resolving CopyFrom references. It returns an error for
// duplicate names, dangling CopyFrom references, or copy chains
// (leaders must be independent engines).
func NewSet(specs []Spec, seed int64, start, end time.Time) (*Set, error) {
	s := &Set{byName: make(map[string]*Engine, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("engine: empty engine name")
		}
		if _, dup := s.byName[spec.Name]; dup {
			return nil, fmt.Errorf("engine: duplicate engine %q", spec.Name)
		}
		e := newEngine(spec, seed, start, end)
		s.engines = append(s.engines, e)
		s.byName[spec.Name] = e
	}
	for _, e := range s.engines {
		for _, rule := range e.Copies {
			leader, ok := s.byName[rule.From]
			if !ok {
				return nil, fmt.Errorf("engine: %q copies unknown engine %q", e.Name, rule.From)
			}
			if len(leader.Copies) > 0 {
				return nil, fmt.Errorf("engine: %q copies %q which itself copies (chains not allowed)",
					e.Name, leader.Name)
			}
			e.leaders = append(e.leaders, leader)
		}
	}
	return s, nil
}

// Engines returns the roster in declaration order.
func (s *Set) Engines() []*Engine { return s.engines }

// Names returns the engine names in declaration order.
func (s *Set) Names() []string {
	names := make([]string, len(s.engines))
	for i, e := range s.engines {
		names[i] = e.Name
	}
	return names
}

// Lookup returns the engine with the given name, if present.
func (s *Set) Lookup(name string) (*Engine, bool) {
	e, ok := s.byName[name]
	return e, ok
}

// Len returns the roster size.
func (s *Set) Len() int { return len(s.engines) }

// Scan runs every engine against the target at scanAt and returns the
// per-engine results in roster order.
func (s *Set) Scan(t Target, scanAt time.Time) []report.EngineResult {
	rows := s.ScanSeries(t, []time.Time{scanAt})
	return rows[0]
}

// ScanSeries runs every engine against the target at each instant,
// returning one result row per instant (engines in roster order).
// Deriving each engine's trajectory once makes this the efficient way
// to produce a whole sample history.
func (s *Set) ScanSeries(t Target, times []time.Time) [][]report.EngineResult {
	rows := make([][]report.EngineResult, len(times))
	for i := range rows {
		rows[i] = make([]report.EngineResult, len(s.engines))
	}
	for j, e := range s.engines {
		series := e.EvaluateSeries(t, times)
		for i := range times {
			rows[i][j] = series[i]
		}
	}
	return rows
}

// fnv64 is the FNV-1a hash used to key per-pair activity streams.
func fnv64(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// noveltyScale maps a sample to its circulation class, identical for
// every engine: 55% of samples are well-circulated (little engine
// drift), 30% are ordinary, 15% are brand-new strains with heavy
// drift.
func noveltyScale(sha string) float64 {
	u := float64(mix64(fnv64("novelty|"+sha))>>11) / (1 << 53)
	switch {
	case u < 0.55:
		return 0.35
	case u < 0.85:
		return 1.0
	default:
		return 1.8
	}
}

// mix64 is the splitmix64 finalizer, used as a stateless hash.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
