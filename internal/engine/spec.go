// Package engine models the behaviour of the 70+ antivirus engines
// behind the simulated VirusTotal service.
//
// The paper's §5.5 attributes label dynamics to three mechanisms —
// engine latency, engine update, and engine activity — and its §7
// adds a fourth structural property, correlation between engines'
// labeling decisions. Each engine here is a generative model with
// exactly those four knobs:
//
//   - Latency: for a truly malicious sample the engine initially
//     misses and converts to detection after an exponential delay
//     (a learning curve), producing the dominant 0→1 flips.
//   - Update: engines run a Poisson signature-update process; verdict
//     conversions are coupled to update events with a configurable
//     probability, so a calibrated fraction (~60%) of flips coincide
//     with a signature-version change between the two scans.
//   - Activity: per scan, an engine abstains (timeout / inactive)
//     with a small probability, yielding Undetected entries that vary
//     engine sets between scans without changing sticky verdicts.
//   - Correlation: engines may copy another engine's latent verdict
//     with per-file-type fidelity, creating the strongly correlated
//     groups of Figures 11–12 and Tables 4–8.
//
// Verdicts are pure functions of (engine, sample, time): every latent
// variable is drawn from a PRNG keyed by the engine name and the
// sample hash, so the whole 14-month simulation is reproducible and
// needs no per-pair mutable state.
package engine

import "time"

// Target is the minimal view of a sample that an engine needs. The
// workload generator (internal/sampleset) produces these.
type Target struct {
	// SHA256 identifies the sample and keys all latent draws.
	SHA256 string
	// FileType is VT's type label, e.g. "Win32 EXE".
	FileType string
	// Malicious is the latent ground truth.
	Malicious bool
	// Detectability in [0, 1] scales how many engines will ever
	// detect a malicious sample; it shapes the AV-Rank plateau.
	Detectability float64
	// FirstSeen is when the sample first reached the service; engine
	// learning curves start here.
	FirstSeen time.Time
}

// PerType is a per-file-type parameter with a default: the value for
// file type ft is m[ft] if present, otherwise the Default.
type PerType struct {
	Default float64
	ByType  map[string]float64
}

// Of returns the parameter value for the given file type.
func (p PerType) Of(fileType string) float64 {
	if v, ok := p.ByType[fileType]; ok {
		return v
	}
	return p.Default
}

// uniform is a convenience constructor for a PerType with no
// per-type overrides.
func uniform(v float64) PerType { return PerType{Default: v} }

// withTypes builds a PerType from a default and override pairs.
func withTypes(def float64, overrides map[string]float64) PerType {
	return PerType{Default: def, ByType: overrides}
}

// Spec is the full behavioural parameterization of one engine.
type Spec struct {
	// Name is the engine's display name, unique within a Set.
	Name string

	// DetectRate is the probability (per file type) that this engine
	// will *ever* detect a malicious sample, before scaling by the
	// sample's Detectability.
	DetectRate PerType

	// LatencyMeanDays is the mean of the exponential delay (per file
	// type) from first submission to the engine's detection
	// conversion. Small values ⇒ the engine detects on the first
	// scan; large values ⇒ many observable 0→1 flips.
	LatencyMeanDays PerType

	// FPRate is the probability (per file type) that the engine
	// initially flags a benign sample; cleared after FPClearMeanDays,
	// producing 1→0 flips.
	FPRate PerType

	// FPClearMeanDays is the mean of the exponential delay before a
	// false positive is cleaned up.
	FPClearMeanDays float64

	// ActivityRate is the per-scan probability that the engine
	// produces any verdict; the complement models timeouts and
	// temporary inactivity (§5.5 cause iii).
	ActivityRate float64

	// TypeSupport is the per-file-type probability that the engine
	// scans the type at all; unsupported types yield Undetected
	// ("type-unsupported" in real VT reports). The zero value means
	// full support for every type. Specialized engines (e.g. a
	// mobile-only scanner) set this to abstain outside their domain.
	TypeSupport PerType

	// UpdateMeanDays is the mean interval of the engine's Poisson
	// signature-update process.
	UpdateMeanDays float64

	// UpdateCoupling is the probability that a verdict conversion
	// waits for the next signature update rather than taking effect
	// immediately. The paper measured update-coincident flips at
	// ~60%.
	UpdateCoupling float64

	// RetractProb is the probability that a detection on a truly
	// malicious sample is later retracted (an over-broad heuristic or
	// generic signature being cleaned up). Retractions are the bulk
	// of real 1→0 flips beyond FP cleanups; the paper counted 4.57M
	// 1→0 against 12.27M 0→1.
	RetractProb PerType

	// RetractMeanDays is the mean of the exponential delay from
	// conversion to retraction.
	RetractMeanDays float64

	// HazardProb is the (tiny) probability that a converted verdict
	// regresses and later re-converts, producing the extremely rare
	// hazard flips (the paper found 9 in 16.8M flips).
	HazardProb float64

	// InstantRate is the per-file-type probability that a detection
	// is active from the sample's first submission (no observable
	// 0→1 flip). The complement goes through the latency process.
	// Real engines detect most malware on first sight; the delayed
	// remainder is what produces the paper's 12.3M 0→1 flips.
	InstantRate PerType

	// Copies lists group-leader rules, tried in order: for a sample
	// of file type ft, the first rule whose Fidelity.Of(ft) > 0 wins
	// a per-sample coin with that probability; on success the
	// engine's sticky verdict is the leader's. This is the mechanism
	// behind §7.2's correlated groups, and the per-type fidelities
	// are what make the groups differ across file types
	// (Tables 4–8, Figure 12).
	Copies []CopyRule

	// LabelPrefix seeds the family-label string for malicious
	// verdicts.
	LabelPrefix string
}

// CopyRule makes an engine copy another engine's latent verdict with
// a per-file-type probability. Leaders must be independent engines
// (no chains).
type CopyRule struct {
	From     string
	Fidelity PerType
}
