package engine

import (
	"testing"
	"time"

	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
)

func TestTypeSupportZeroValueMeansFullSupport(t *testing.T) {
	spec := base("E", "x")
	spec.ActivityRate = 1
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	tgt := malTarget("zv")
	for d := 0; d < 30; d++ {
		res := e.Evaluate(tgt, tgt.FirstSeen.Add(time.Duration(d)*24*time.Hour))
		if res.Verdict == report.Undetected {
			t.Fatal("fully supported engine abstained")
		}
	}
}

func TestTypeSupportZeroProbAlwaysAbstains(t *testing.T) {
	spec := base("E", "x")
	spec.ActivityRate = 1
	spec.TypeSupport = withTypes(1, map[string]float64{ftypes.Win32EXE: -1})
	// Of() returns -1 for EXE: <= 0 means never supported.
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	tgt := malTarget("zp") // Win32 EXE
	for d := 0; d < 10; d++ {
		res := e.Evaluate(tgt, tgt.FirstSeen.Add(time.Duration(d)*24*time.Hour))
		if res.Verdict != report.Undetected {
			t.Fatal("unsupported type produced a verdict")
		}
	}
}

func TestTypeSupportConsistentPerSample(t *testing.T) {
	// Partial support: each sample is either always scanned or never
	// scanned — the coin must not be re-flipped per scan.
	spec := base("E", "x")
	spec.ActivityRate = 1
	spec.TypeSupport = withTypes(0.5, nil)
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	supported, abstained := 0, 0
	for i := 0; i < 200; i++ {
		tgt := malTarget(shaN(i))
		var sawVerdict, sawAbstain bool
		for d := 0; d < 20; d += 5 {
			res := e.Evaluate(tgt, tgt.FirstSeen.Add(time.Duration(d)*24*time.Hour))
			if res.Verdict == report.Undetected {
				sawAbstain = true
			} else {
				sawVerdict = true
			}
		}
		if sawVerdict && sawAbstain {
			t.Fatalf("sample %d: support coin re-flipped across scans", i)
		}
		if sawVerdict {
			supported++
		} else {
			abstained++
		}
	}
	if supported == 0 || abstained == 0 {
		t.Fatalf("partial support degenerate: %d / %d", supported, abstained)
	}
}

func TestAvastMobileAbstainsOutsideDEX(t *testing.T) {
	set := testSet(t, DefaultRoster())
	e, ok := set.Lookup("Avast-Mobile")
	if !ok {
		t.Fatal("Avast-Mobile missing")
	}
	undetectedEXE, totalEXE := 0, 0
	undetectedDEX := 0
	for i := 0; i < 200; i++ {
		exe := malTarget(shaN(i)) // Win32 EXE
		at := exe.FirstSeen.Add(24 * time.Hour)
		if e.Evaluate(exe, at).Verdict == report.Undetected {
			undetectedEXE++
		}
		totalEXE++
		dex := exe
		dex.FileType = ftypes.DEX
		if e.Evaluate(dex, at).Verdict == report.Undetected {
			undetectedDEX++
		}
	}
	if frac := float64(undetectedEXE) / float64(totalEXE); frac < 0.75 {
		t.Fatalf("Avast-Mobile abstained on only %.2f of EXE scans", frac)
	}
	if frac := float64(undetectedDEX) / float64(totalEXE); frac > 0.10 {
		t.Fatalf("Avast-Mobile abstained on %.2f of DEX scans", frac)
	}
}
