package engine

import (
	"testing"
	"time"

	"vtdynamics/internal/simclock"
)

func benchSet(b *testing.B) *Set {
	b.Helper()
	set, err := NewSet(DefaultRoster(), 1, simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func BenchmarkScanSingle(b *testing.B) {
	set := benchSet(b)
	tgt := malTarget("bench-single")
	at := tgt.FirstSeen.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Scan(tgt, at)
	}
}

func BenchmarkScanSeries8(b *testing.B) {
	set := benchSet(b)
	tgt := malTarget("bench-series")
	times := make([]time.Time, 8)
	for i := range times {
		times[i] = tgt.FirstSeen.Add(time.Duration(i*3) * 24 * time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.ScanSeries(tgt, times)
	}
}

func BenchmarkTrajectory(b *testing.B) {
	set := benchSet(b)
	e := set.Engines()[0]
	tgt := malTarget("bench-traj")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.trajectory(tgt)
	}
}
