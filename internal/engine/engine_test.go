package engine

import (
	"testing"
	"time"

	"vtdynamics/internal/ftypes"
	"vtdynamics/internal/report"
	"vtdynamics/internal/simclock"
)

const testSeed = 1234

func window() (time.Time, time.Time) {
	return simclock.CollectionStart, simclock.CollectionEnd
}

func testSet(t *testing.T, specs []Spec) *Set {
	t.Helper()
	start, end := window()
	s, err := NewSet(specs, testSeed, start, end)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func malTarget(sha string) Target {
	return Target{
		SHA256:        sha,
		FileType:      ftypes.Win32EXE,
		Malicious:     true,
		Detectability: 0.9,
		FirstSeen:     simclock.CollectionStart.Add(24 * time.Hour),
	}
}

func benTarget(sha string) Target {
	t := malTarget(sha)
	t.Malicious = false
	return t
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	start, end := window()
	_, err := NewSet([]Spec{base("A", "x"), base("A", "x")}, testSeed, start, end)
	if err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestNewSetRejectsEmptyName(t *testing.T) {
	start, end := window()
	_, err := NewSet([]Spec{{}}, testSeed, start, end)
	if err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestNewSetRejectsUnknownLeader(t *testing.T) {
	start, end := window()
	s := base("B", "x")
	s.Copies = []CopyRule{copyAll("NoSuch", 0.9)}
	_, err := NewSet([]Spec{s}, testSeed, start, end)
	if err == nil {
		t.Fatal("expected unknown-leader error")
	}
}

func TestNewSetRejectsCopyChains(t *testing.T) {
	start, end := window()
	a := base("A", "x")
	b := base("B", "x")
	b.Copies = []CopyRule{copyAll("A", 0.9)}
	c := base("C", "x")
	c.Copies = []CopyRule{copyAll("B", 0.9)}
	_, err := NewSet([]Spec{a, b, c}, testSeed, start, end)
	if err == nil {
		t.Fatal("expected chain error")
	}
}

func TestVersionMonotonicOverTime(t *testing.T) {
	set := testSet(t, []Spec{base("E", "x")})
	e := set.Engines()[0]
	start, _ := window()
	prev := 0
	for d := 0; d < 420; d += 7 {
		v := e.VersionAt(start.Add(time.Duration(d) * 24 * time.Hour))
		if v < prev {
			t.Fatalf("version went backwards at day %d: %d < %d", d, v, prev)
		}
		prev = v
	}
	if e.NumUpdates() == 0 {
		t.Fatal("expected at least one update event over 14 months")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	set1 := testSet(t, DefaultRoster())
	set2 := testSet(t, DefaultRoster())
	tgt := malTarget("deadbeef")
	at := simclock.CollectionStart.Add(30 * 24 * time.Hour)
	r1 := set1.Scan(tgt, at)
	r2 := set2.Scan(tgt, at)
	if len(r1) != len(r2) {
		t.Fatal("result length mismatch")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic result for %s: %+v vs %+v", r1[i].Engine, r1[i], r2[i])
		}
	}
}

func TestStickyVerdictMonotoneForMalicious(t *testing.T) {
	// With hazards and retractions disabled, a malicious sample's
	// sticky verdict never goes 1 -> 0.
	spec := base("E", "x")
	spec.HazardProb = 0
	spec.RetractProb = uniform(0)
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	for s := 0; s < 200; s++ {
		tgt := malTarget(shaN(s))
		seen1 := false
		for d := 0; d < 400; d += 3 {
			at := tgt.FirstSeen.Add(time.Duration(d) * 24 * time.Hour)
			v := e.stickyVerdict(tgt, at)
			if v == report.Malicious {
				seen1 = true
			} else if seen1 {
				t.Fatalf("sample %d: sticky verdict regressed at day %d", s, d)
			}
		}
	}
}

func TestBenignFalsePositiveClears(t *testing.T) {
	// With a forced FP rate of 1 and a short clear time, benign
	// samples are flagged early then cleared: a 1 -> 0 trajectory.
	spec := base("E", "x")
	spec.FPRate = uniform(1)
	spec.FPClearMeanDays = 5
	spec.HazardProb = 0
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	tgt := benTarget("benign-sample")
	early := e.stickyVerdict(tgt, tgt.FirstSeen)
	if early != report.Malicious {
		t.Fatalf("FP did not fire at first sight: %v", early)
	}
	late := e.stickyVerdict(tgt, tgt.FirstSeen.Add(365*24*time.Hour))
	if late != report.Benign {
		t.Fatalf("FP never cleared: %v", late)
	}
}

func TestZeroDetectRateNeverDetects(t *testing.T) {
	spec := base("E", "x")
	spec.DetectRate = uniform(0)
	spec.FPRate = uniform(0)
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	for s := 0; s < 100; s++ {
		tgt := malTarget(shaN(s))
		at := tgt.FirstSeen.Add(100 * 24 * time.Hour)
		if v := e.stickyVerdict(tgt, at); v != report.Benign {
			t.Fatalf("zero-capability engine detected sample %d", s)
		}
	}
}

func TestActivityZeroAlwaysUndetected(t *testing.T) {
	spec := base("E", "x")
	spec.ActivityRate = 0
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	tgt := malTarget("x")
	res := e.Evaluate(tgt, tgt.FirstSeen.Add(time.Hour))
	if res.Verdict != report.Undetected {
		t.Fatalf("inactive engine produced verdict %v", res.Verdict)
	}
}

func TestActivityVariesAcrossScans(t *testing.T) {
	spec := base("E", "x")
	spec.ActivityRate = 0.5
	set := testSet(t, []Spec{spec})
	e := set.Engines()[0]
	tgt := malTarget("x")
	active, inactive := 0, 0
	for d := 0; d < 400; d++ {
		res := e.Evaluate(tgt, tgt.FirstSeen.Add(time.Duration(d)*24*time.Hour))
		if res.Verdict == report.Undetected {
			inactive++
		} else {
			active++
		}
	}
	if active == 0 || inactive == 0 {
		t.Fatalf("activity not varying: active=%d inactive=%d", active, inactive)
	}
}

func TestCopyingProducesAgreement(t *testing.T) {
	leader := base("Leader", "x")
	leader.HazardProb = 0
	follower := base("Follower", "x")
	follower.HazardProb = 0
	follower.Copies = []CopyRule{copyAll("Leader", 1.0)}
	follower.ActivityRate = 1
	leader.ActivityRate = 1
	set := testSet(t, []Spec{leader, follower})
	le, _ := set.Lookup("Leader")
	fe, _ := set.Lookup("Follower")
	agree, total := 0, 0
	for s := 0; s < 300; s++ {
		tgt := malTarget(shaN(s))
		at := tgt.FirstSeen.Add(60 * 24 * time.Hour)
		lv := le.Evaluate(tgt, at).Verdict
		fv := fe.Evaluate(tgt, at).Verdict
		total++
		if lv == fv {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.99 {
		t.Fatalf("perfect-fidelity follower agreed only %.2f of the time", frac)
	}
}

func TestCopyFidelityZeroTypeIndependent(t *testing.T) {
	// A rule scoped to DEX must not apply to EXE samples.
	leader := base("Leader", "x")
	follower := base("Follower", "x")
	follower.Copies = []CopyRule{copyTypes("Leader", 1.0, ftypes.DEX)}
	set := testSet(t, []Spec{leader, follower})
	fe, _ := set.Lookup("Follower")
	// For EXE, the follower must use its own process; with its own
	// detect rate zeroed it should never flag even though the leader
	// would.
	fe.DetectRate = uniform(0)
	fe.FPRate = uniform(0)
	tgt := malTarget("exe-sample") // Win32 EXE
	at := tgt.FirstSeen.Add(90 * 24 * time.Hour)
	if v := fe.Evaluate(tgt, at).Verdict; v == report.Malicious {
		t.Fatal("type-scoped copy rule leaked to another type")
	}
}

func TestDefaultRosterInstantiates(t *testing.T) {
	set := testSet(t, DefaultRoster())
	if set.Len() < 70 {
		t.Fatalf("roster has %d engines, want >= 70", set.Len())
	}
	names := map[string]bool{}
	for _, n := range set.Names() {
		if names[n] {
			t.Fatalf("duplicate engine %q", n)
		}
		names[n] = true
	}
	for _, want := range []string{"Avast", "AVG", "BitDefender", "Paloalto", "APEX",
		"Webroot", "CrowdStrike", "Arcabit", "F-Secure", "Jiangmin", "Microsoft"} {
		if !names[want] {
			t.Fatalf("roster missing %q", want)
		}
	}
}

func TestScanResultsValidateAsReport(t *testing.T) {
	set := testSet(t, DefaultRoster())
	tgt := malTarget("validate-me")
	at := tgt.FirstSeen.Add(10 * 24 * time.Hour)
	results := set.Scan(tgt, at)
	r := &report.ScanReport{
		SHA256:       tgt.SHA256,
		FileType:     tgt.FileType,
		AnalysisDate: at,
		Results:      results,
		AVRank:       report.ComputeAVRank(results),
		EnginesTotal: report.CountActive(results),
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.AVRank == 0 {
		t.Fatal("highly detectable malicious PE got AVRank 0")
	}
}

func TestMaliciousLabelPresentOnlyOnDetections(t *testing.T) {
	set := testSet(t, DefaultRoster())
	tgt := malTarget("labels")
	at := tgt.FirstSeen.Add(200 * 24 * time.Hour)
	for _, res := range set.Scan(tgt, at) {
		if res.Verdict == report.Malicious && res.Label == "" {
			t.Fatalf("%s: malicious verdict without label", res.Engine)
		}
		if res.Verdict != report.Malicious && res.Label != "" {
			t.Fatalf("%s: label %q on non-malicious verdict", res.Engine, res.Label)
		}
	}
}

func TestAVRankGrowsOverTime(t *testing.T) {
	// Engine latency means the expected AV-Rank of a malicious sample
	// rises between first sight and much later.
	set := testSet(t, DefaultRoster())
	const n = 60
	sumEarly, sumLate := 0, 0
	for s := 0; s < n; s++ {
		tgt := malTarget(shaN(s))
		early := set.Scan(tgt, tgt.FirstSeen)
		late := set.Scan(tgt, tgt.FirstSeen.Add(300*24*time.Hour))
		sumEarly += report.ComputeAVRank(early)
		sumLate += report.ComputeAVRank(late)
	}
	if sumLate <= sumEarly {
		t.Fatalf("AV-Rank did not grow: early=%d late=%d", sumEarly, sumLate)
	}
}

func TestPerTypeOf(t *testing.T) {
	p := withTypes(0.5, map[string]float64{"A": 0.9})
	if p.Of("A") != 0.9 || p.Of("B") != 0.5 {
		t.Fatalf("PerType lookup broken: %v %v", p.Of("A"), p.Of("B"))
	}
}

func shaN(i int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 8)
	for j := range b {
		b[j] = hex[(i>>uint(j*4))&0xf]
	}
	return "sha" + string(b)
}
