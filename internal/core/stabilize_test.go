package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestStabilizeWithinConstantTail(t *testing.T) {
	// 5, 3, 8, 8, 8: stabilizes at index 2 for r=0.
	res := series(5, 3, 8, 8, 8).StabilizeWithin(0)
	if !res.Stable || res.Index != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.TimeToStability != 48*time.Hour {
		t.Fatalf("time to stability = %v", res.TimeToStability)
	}
}

func TestStabilizeWithinNeverStable(t *testing.T) {
	// Last two scans differ by more than r.
	res := series(1, 5, 1, 9).StabilizeWithin(0)
	if res.Stable {
		t.Fatalf("expected unstable, got %+v", res)
	}
	// But within r=8 it is stable from index 0.
	res = series(1, 5, 1, 9).StabilizeWithin(8)
	if !res.Stable || res.Index != 0 {
		t.Fatalf("r=8: %+v", res)
	}
}

func TestStabilizeTwoScan(t *testing.T) {
	// Two equal scans stabilize at index 0 for r=0.
	res := series(4, 4).StabilizeWithin(0)
	if !res.Stable || res.Index != 0 || res.TimeToStability != 0 {
		t.Fatalf("res = %+v", res)
	}
	// Two scans differing by 2 need r >= 2.
	if series(4, 6).StabilizeWithin(1).Stable {
		t.Fatal("r=1 should not stabilize a 2-wide change")
	}
	if !series(4, 6).StabilizeWithin(2).Stable {
		t.Fatal("r=2 should stabilize a 2-wide change")
	}
}

func TestStabilizeSingleScan(t *testing.T) {
	if series(4).StabilizeWithin(0).Stable {
		t.Fatal("single scan cannot demonstrate stability")
	}
}

func TestStabilizeNegativeRange(t *testing.T) {
	if series(4, 4).StabilizeWithin(-1).Stable {
		t.Fatal("negative range should never stabilize")
	}
}

func TestStabilizeConstantSeries(t *testing.T) {
	res := series(2, 2, 2, 2).StabilizeWithin(0)
	if !res.Stable || res.Index != 0 {
		t.Fatalf("constant series: %+v", res)
	}
}

// Property: stability is monotone in r — if stable within r, then
// stable within r+1 with an index no later.
func TestQuickStabilizeMonotoneInRange(t *testing.T) {
	f := func(raw []uint8, rRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		ranks := make([]int, len(raw))
		for i, v := range raw {
			ranks[i] = int(v % 70)
		}
		r := int(rRaw % 6)
		s := series(ranks...)
		a := s.StabilizeWithin(r)
		b := s.StabilizeWithin(r + 1)
		if a.Stable {
			if !b.Stable {
				return false
			}
			if b.Index > a.Index {
				return false
			}
			if b.TimeToStability > a.TimeToStability {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned suffix really satisfies the band and the
// suffix has >= 2 elements.
func TestQuickStabilizeSuffixValid(t *testing.T) {
	f := func(raw []uint8, rRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		ranks := make([]int, len(raw))
		for i, v := range raw {
			ranks[i] = int(v % 70)
		}
		r := int(rRaw % 6)
		s := series(ranks...)
		res := s.StabilizeWithin(r)
		if !res.Stable {
			return true
		}
		if res.Index > len(ranks)-2 {
			return false
		}
		mn, mx := ranks[res.Index], ranks[res.Index]
		for _, p := range ranks[res.Index:] {
			if p < mn {
				mn = p
			}
			if p > mx {
				mx = p
			}
		}
		return mx-mn <= r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelSequence(t *testing.T) {
	s := series(0, 5, 10)
	got := s.LabelSequence(5)
	want := []BinaryLabel{'B', 'M', 'M'}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LabelSequence = %c%c%c", got[0], got[1], got[2])
		}
	}
}

func TestLabelStabilization(t *testing.T) {
	// Ranks 0, 6, 7 at t=5: B M M -> stabilizes at index 1.
	res := series(0, 6, 7).LabelStabilization(5)
	if !res.Stable || res.Index != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.TimeToStability != 24*time.Hour {
		t.Fatalf("time = %v", res.TimeToStability)
	}
	// Ranks 6, 0 at t=5: M B -> last two differ, not stabilized.
	if series(6, 0).LabelStabilization(5).Stable {
		t.Fatal("M,B should not be stable")
	}
	// All-B sequence stabilizes at index 0.
	res = series(0, 1, 2).LabelStabilization(5)
	if !res.Stable || res.Index != 0 {
		t.Fatalf("all-B: %+v", res)
	}
	// Flip at the very end after long stability.
	if series(0, 0, 0, 0, 9).LabelStabilization(5).Stable {
		t.Fatal("trailing flip should not be stable")
	}
}

func TestLabelStabilizationSingleScan(t *testing.T) {
	if series(9).LabelStabilization(5).Stable {
		t.Fatal("single scan cannot demonstrate label stability")
	}
}

// Property: label stabilization at threshold t is implied by AV-Rank
// stabilization with r=0 at the same point (a constant rank suffix
// gives a constant label suffix).
func TestQuickLabelStabilizationImplied(t *testing.T) {
	f := func(raw []uint8, tRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		ranks := make([]int, len(raw))
		for i, v := range raw {
			ranks[i] = int(v % 70)
		}
		th := int(tRaw%50) + 1
		s := series(ranks...)
		rank := s.StabilizeWithin(0)
		if !rank.Stable {
			return true
		}
		label := s.LabelStabilization(th)
		return label.Stable && label.Index <= rank.Index
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
