package core

import (
	"fmt"
	"math"

	"vtdynamics/internal/report"
	"vtdynamics/internal/stats"
)

// §7.2: correlation between engines' labeling decisions. Scans are
// rows of a matrix R with R[i][j] ∈ {1, 0, -1} (malicious, benign,
// undetected — Equation 1); each engine's column is a decision
// vector, and engine pairs with Spearman ρ > 0.8 are "strongly
// correlated". Connected components of the strong-correlation graph
// are the engine groups of Tables 4–8.

// VerdictMatrix is the scans × engines decision matrix.
type VerdictMatrix struct {
	engines []string
	index   map[string]int
	// columns[j][i] is engine j's verdict for scan i. Column-major
	// storage because every analysis is per-column.
	columns [][]int8
	rows    int
}

// NewVerdictMatrix creates a matrix over a fixed engine roster.
func NewVerdictMatrix(engines []string) *VerdictMatrix {
	m := &VerdictMatrix{
		engines: append([]string(nil), engines...),
		index:   make(map[string]int, len(engines)),
		columns: make([][]int8, len(engines)),
	}
	for i, e := range m.engines {
		m.index[e] = i
	}
	return m
}

// AddReport appends one scan as a row. Engines absent from the report
// are recorded as undetected; engines not in the roster are ignored.
func (m *VerdictMatrix) AddReport(r *report.ScanReport) {
	for j := range m.columns {
		m.columns[j] = append(m.columns[j], int8(report.Undetected))
	}
	for _, er := range r.Results {
		if j, ok := m.index[er.Engine]; ok {
			m.columns[j][m.rows] = int8(er.Verdict)
		}
	}
	m.rows++
}

// AddHistory appends every report of the history.
func (m *VerdictMatrix) AddHistory(h *report.History) {
	for _, r := range h.Reports {
		m.AddReport(r)
	}
}

// Rows returns the number of scans added.
func (m *VerdictMatrix) Rows() int { return m.rows }

// Engines returns the roster in column order.
func (m *VerdictMatrix) Engines() []string { return m.engines }

// Column returns engine e's decision vector.
func (m *VerdictMatrix) Column(e string) ([]int8, bool) {
	j, ok := m.index[e]
	if !ok {
		return nil, false
	}
	return m.columns[j], true
}

// PairCorrelation is the Spearman correlation of one engine pair.
type PairCorrelation struct {
	A, B string
	Rho  float64
	P    float64
}

// Correlations computes the Spearman correlation for every engine
// pair. Columns are ranked once, so the cost is
// O(E · n log n + E² · n). Engines whose columns are constant are
// reported with ρ = 0 (treated as uncorrelated).
func (m *VerdictMatrix) Correlations() ([]PairCorrelation, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("core: need >= 2 scans, have %d", m.rows)
	}
	e := len(m.engines)
	// Rank every column once.
	ranked := make([][]float64, e)
	for j := 0; j < e; j++ {
		col := make([]float64, m.rows)
		for i, v := range m.columns[j] {
			col[i] = float64(v)
		}
		ranked[j] = stats.Ranks(col)
	}
	var out []PairCorrelation
	for a := 0; a < e; a++ {
		for b := a + 1; b < e; b++ {
			rho, err := stats.Pearson(ranked[a], ranked[b])
			if err != nil {
				return nil, err
			}
			out = append(out, PairCorrelation{
				A:   m.engines[a],
				B:   m.engines[b],
				Rho: rho,
				P:   pValueFor(rho, m.rows),
			})
		}
	}
	return out, nil
}

// pValueFor mirrors the t-approximation used by stats.Spearman.
func pValueFor(rho float64, n int) float64 {
	if n < 3 {
		return 1
	}
	if rho >= 1 || rho <= -1 {
		return 0
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	return stats.StudentTTwoSidedP(t, float64(n-2))
}

// PairAgreement is an engine pair's chance-corrected agreement, the
// robustness companion to PairCorrelation: κ is computed only over
// scans where both engines produced a verdict, so activity gaps do
// not attenuate it the way they attenuate rank correlation.
type PairAgreement struct {
	A, B  string
	Kappa float64
	// N is the number of jointly defined scans.
	N int
}

// KappaAgreements computes Cohen's κ for every engine pair over the
// scans where both produced a defined verdict.
func (m *VerdictMatrix) KappaAgreements() ([]PairAgreement, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("core: need >= 2 scans, have %d", m.rows)
	}
	e := len(m.engines)
	var out []PairAgreement
	for a := 0; a < e; a++ {
		for b := a + 1; b < e; b++ {
			var conf stats.Confusion
			ca, cb := m.columns[a], m.columns[b]
			for i := 0; i < m.rows; i++ {
				if ca[i] < 0 || cb[i] < 0 {
					continue // one side undetected
				}
				conf.Add(ca[i] == 1, cb[i] == 1)
			}
			out = append(out, PairAgreement{
				A:     m.engines[a],
				B:     m.engines[b],
				Kappa: conf.Kappa(),
				N:     conf.Total(),
			})
		}
	}
	return out, nil
}

// StrongKappaGroups extracts the connected components of pairs with
// κ > threshold, the kappa analogue of StrongGroups.
func StrongKappaGroups(pairs []PairAgreement, threshold float64) [][]string {
	g := stats.NewGraph()
	for _, p := range pairs {
		if p.Kappa > threshold {
			g.AddEdge(p.A, p.B, p.Kappa)
		}
	}
	return g.ConnectedComponents()
}

// StrongCorrelationGraph keeps the pairs with ρ > threshold (the
// paper uses 0.8) as an undirected graph whose connected components
// are the engine groups.
func StrongCorrelationGraph(pairs []PairCorrelation, threshold float64) *stats.Graph {
	g := stats.NewGraph()
	for _, p := range pairs {
		if p.Rho > threshold {
			g.AddEdge(p.A, p.B, p.Rho)
		}
	}
	return g
}

// StrongGroups returns the connected components of the
// strong-correlation graph: the "groups of highly correlated
// engines".
func StrongGroups(pairs []PairCorrelation, threshold float64) [][]string {
	return StrongCorrelationGraph(pairs, threshold).ConnectedComponents()
}
