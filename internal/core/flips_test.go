package core

import (
	"testing"
	"time"

	"vtdynamics/internal/report"
)

// mkSeries builds an EngineSeries with daily scans from verdict runes:
// 'M' malicious, 'B' benign, 'U' undetected. Versions increment at
// positions listed in bumps.
func mkSeries(pattern string, bumps ...int) EngineSeries {
	s := EngineSeries{Engine: "E"}
	ver := 1
	bumpSet := map[int]bool{}
	for _, b := range bumps {
		bumpSet[b] = true
	}
	for i, c := range pattern {
		if bumpSet[i] {
			ver++
		}
		s.Times = append(s.Times, t0.Add(time.Duration(i)*24*time.Hour))
		switch c {
		case 'M':
			s.Labels = append(s.Labels, report.Malicious)
		case 'B':
			s.Labels = append(s.Labels, report.Benign)
		default:
			s.Labels = append(s.Labels, report.Undetected)
		}
		s.Versions = append(s.Versions, ver)
	}
	return s
}

func TestCountFlipsUpDown(t *testing.T) {
	fc := CountFlips(mkSeries("BBMM"))
	if fc.Up != 1 || fc.Down != 0 {
		t.Fatalf("BBMM: %+v", fc)
	}
	if fc.Opportunities != 3 {
		t.Fatalf("opportunities = %d", fc.Opportunities)
	}
	fc = CountFlips(mkSeries("MMBB"))
	if fc.Up != 0 || fc.Down != 1 {
		t.Fatalf("MMBB: %+v", fc)
	}
}

func TestCountFlipsNoFlips(t *testing.T) {
	fc := CountFlips(mkSeries("BBBB"))
	if fc.Flips() != 0 || fc.Opportunities != 3 {
		t.Fatalf("BBBB: %+v", fc)
	}
	if fc.Ratio() != 0 {
		t.Fatalf("ratio = %v", fc.Ratio())
	}
}

func TestCountFlipsSkipsUndetected(t *testing.T) {
	// B U M: one defined pair (B, M) -> one up flip; the U gap is not
	// an opportunity boundary.
	fc := CountFlips(mkSeries("BUM"))
	if fc.Up != 1 || fc.Opportunities != 1 {
		t.Fatalf("BUM: %+v", fc)
	}
	// U-only series: nothing.
	fc = CountFlips(mkSeries("UUU"))
	if fc.Flips() != 0 || fc.Opportunities != 0 {
		t.Fatalf("UUU: %+v", fc)
	}
}

func TestHazardFlips(t *testing.T) {
	// B M B = 0→1→0 hazard.
	fc := CountFlips(mkSeries("BMB"))
	if fc.Hazard01 != 1 || fc.Hazard10 != 0 {
		t.Fatalf("BMB: %+v", fc)
	}
	if fc.Up != 1 || fc.Down != 1 {
		t.Fatalf("BMB flips: %+v", fc)
	}
	// M B M = 1→0→1 hazard.
	fc = CountFlips(mkSeries("MBM"))
	if fc.Hazard10 != 1 || fc.Hazard01 != 0 {
		t.Fatalf("MBM: %+v", fc)
	}
	// B M M B: flips up then down, but separated — no hazard.
	fc = CountFlips(mkSeries("BMMB"))
	if fc.Hazards() != 0 {
		t.Fatalf("BMMB hazards: %+v", fc)
	}
	if fc.Up != 1 || fc.Down != 1 {
		t.Fatalf("BMMB flips: %+v", fc)
	}
	// B M B M: two hazards (BMB and MBM overlap).
	fc = CountFlips(mkSeries("BMBM"))
	if fc.Hazard01 != 1 || fc.Hazard10 != 1 {
		t.Fatalf("BMBM: %+v", fc)
	}
}

func TestHazardAcrossUndetectedGap(t *testing.T) {
	// B M U B: defined sequence B M B -> hazard.
	fc := CountFlips(mkSeries("BMUB"))
	if fc.Hazard01 != 1 {
		t.Fatalf("BMUB: %+v", fc)
	}
}

func TestUpdateCoincidence(t *testing.T) {
	// Version bumps at index 2, flip between index 1 and 2 -> coincident.
	fc := CountFlips(mkSeries("BBMM", 2))
	if fc.Up != 1 || fc.UpdateCoincident != 1 {
		t.Fatalf("coincident: %+v", fc)
	}
	// No version change across the flip -> not coincident.
	fc = CountFlips(mkSeries("BBMM", 1))
	if fc.UpdateCoincident != 0 {
		t.Fatalf("non-coincident: %+v", fc)
	}
}

func TestFlipCountsAdd(t *testing.T) {
	a := FlipCounts{Up: 1, Down: 2, Hazard01: 1, Opportunities: 5, UpdateCoincident: 1}
	b := FlipCounts{Up: 3, Hazard10: 2, Opportunities: 7}
	a.Add(b)
	if a.Up != 4 || a.Down != 2 || a.Hazard01 != 1 || a.Hazard10 != 2 ||
		a.Opportunities != 12 || a.UpdateCoincident != 1 {
		t.Fatalf("Add: %+v", a)
	}
}

func historyFrom(ft string, engineLabels map[string]string) *report.History {
	// All engines share the same number of scans.
	var n int
	for _, pattern := range engineLabels {
		n = len(pattern)
		break
	}
	h := &report.History{}
	for i := 0; i < n; i++ {
		var results []report.EngineResult
		for eng, pattern := range engineLabels {
			var v report.Verdict
			switch pattern[i] {
			case 'M':
				v = report.Malicious
			case 'B':
				v = report.Benign
			default:
				v = report.Undetected
			}
			results = append(results, report.EngineResult{Engine: eng, Verdict: v, SignatureVersion: 1})
		}
		h.Reports = append(h.Reports, &report.ScanReport{
			SHA256:       "h",
			FileType:     ft,
			AnalysisDate: t0.Add(time.Duration(i) * 24 * time.Hour),
			Results:      results,
			AVRank:       report.ComputeAVRank(results),
			EnginesTotal: report.CountActive(results),
		})
	}
	return h
}

func TestExtractEngineSeries(t *testing.T) {
	h := historyFrom("TXT", map[string]string{"A": "BM", "B": "UM"})
	s := ExtractEngineSeries(h, "A")
	if s.Labels[0] != report.Benign || s.Labels[1] != report.Malicious {
		t.Fatalf("A series: %v", s.Labels)
	}
	s = ExtractEngineSeries(h, "B")
	if s.Labels[0] != report.Undetected {
		t.Fatalf("B series: %v", s.Labels)
	}
	s = ExtractEngineSeries(h, "missing")
	if s.Labels[0] != report.Undetected || s.Labels[1] != report.Undetected {
		t.Fatalf("missing engine series: %v", s.Labels)
	}
}

func TestFlipMatrix(t *testing.T) {
	m := NewFlipMatrix()
	m.AddHistory(historyFrom("TXT", map[string]string{"A": "BM", "B": "BB"}))
	m.AddHistory(historyFrom("TXT", map[string]string{"A": "MB", "B": "BB"}))
	m.AddHistory(historyFrom("PDF", map[string]string{"A": "BB", "B": "BM"}))

	aTXT := m.Cell("A", "TXT")
	if aTXT.Up != 1 || aTXT.Down != 1 || aTXT.Opportunities != 2 {
		t.Fatalf("A/TXT: %+v", aTXT)
	}
	if got := m.Cell("A", "PDF"); got.Flips() != 0 || got.Opportunities != 1 {
		t.Fatalf("A/PDF: %+v", got)
	}
	if got := m.Cell("B", "PDF"); got.Up != 1 {
		t.Fatalf("B/PDF: %+v", got)
	}
	if got := m.Cell("nope", "TXT"); got.Opportunities != 0 {
		t.Fatalf("missing cell: %+v", got)
	}

	totalA := m.EngineTotal("A")
	if totalA.Flips() != 2 || totalA.Opportunities != 3 {
		t.Fatalf("A total: %+v", totalA)
	}
	grand := m.Total()
	if grand.Flips() != 3 || grand.Opportunities != 6 {
		t.Fatalf("grand total: %+v", grand)
	}

	engines := m.Engines()
	if len(engines) != 2 || engines[0] != "A" || engines[1] != "B" {
		t.Fatalf("engines: %v", engines)
	}
	fts := m.FileTypes()
	if len(fts) != 2 || fts[0] != "PDF" || fts[1] != "TXT" {
		t.Fatalf("file types: %v", fts)
	}
}

func TestFlipMatrixIgnoresSingleScan(t *testing.T) {
	m := NewFlipMatrix()
	m.AddHistory(historyFrom("TXT", map[string]string{"A": "M"}))
	if got := m.Total(); got.Opportunities != 0 {
		t.Fatalf("single-scan history counted: %+v", got)
	}
}

func TestFlipMatrixMerge(t *testing.T) {
	a := NewFlipMatrix()
	a.AddHistory(historyFrom("TXT", map[string]string{"A": "BM"}))
	b := NewFlipMatrix()
	b.AddHistory(historyFrom("TXT", map[string]string{"A": "MB"}))
	a.Merge(b)
	cell := a.Cell("A", "TXT")
	if cell.Up != 1 || cell.Down != 1 || cell.Opportunities != 2 {
		t.Fatalf("merged: %+v", cell)
	}
}
