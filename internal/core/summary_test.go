package core

import (
	"testing"

	"vtdynamics/internal/report"
)

func TestSummarizeBasic(t *testing.T) {
	h := historyFrom("TXT", map[string]string{
		"A": "BMM", // one up flip
		"B": "MMM", // steady detector
		"C": "BBB", // steady benign
	})
	h.Meta.SHA256 = "sum-1"
	s := Summarize(h, 2)
	if s.SHA256 != "sum-1" || s.FileType != "TXT" || s.Scans != 3 {
		t.Fatalf("identity fields: %+v", s)
	}
	// Ranks: 1, 2, 2 -> dynamic, delta 1, final 2.
	if s.Class != Dynamic || s.Delta != 1 || s.FinalRank != 2 {
		t.Fatalf("dynamics fields: %+v", s)
	}
	// At t=2: ranks straddle (1 < 2 <= 2) -> gray.
	if s.Category != Gray {
		t.Fatalf("category = %v", s.Category)
	}
	// Rank stabilizes at index 1 (suffix 2,2); label (t=2) also at 1.
	if !s.RankStable.Stable || s.RankStable.Index != 1 {
		t.Fatalf("rank stabilization: %+v", s.RankStable)
	}
	if !s.LabelStable.Stable || s.LabelStable.Index != 1 {
		t.Fatalf("label stabilization: %+v", s.LabelStable)
	}
	if s.Flips.Up != 1 || s.Flips.Down != 0 || s.FlippingEngines != 1 {
		t.Fatalf("flips: %+v engines %d", s.Flips, s.FlippingEngines)
	}
	if s.Span != 48*60*60*1e9 {
		t.Fatalf("span = %v", s.Span)
	}
}

func TestSummarizeEmptyHistory(t *testing.T) {
	s := Summarize(&report.History{Meta: report.SampleMeta{SHA256: "empty"}}, 5)
	if s.Scans != 0 || s.SHA256 != "empty" {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeStableSample(t *testing.T) {
	h := historyFrom("PDF", map[string]string{"A": "MM", "B": "BB"})
	s := Summarize(h, 1)
	if s.Class != Stable || s.Delta != 0 {
		t.Fatalf("stable sample: %+v", s)
	}
	if s.Category != Black { // constant rank 1 >= t=1
		t.Fatalf("category = %v", s.Category)
	}
	if s.Flips.Flips() != 0 || s.FlippingEngines != 0 {
		t.Fatalf("flips on stable sample: %+v", s.Flips)
	}
}

func TestSummarizeThresholdZeroSkipsLabeling(t *testing.T) {
	h := historyFrom("TXT", map[string]string{"A": "BM"})
	s := Summarize(h, 0)
	if s.LabelStable.Stable {
		t.Fatal("labeling computed despite t=0")
	}
	// Dynamics fields still filled.
	if s.Class != Dynamic {
		t.Fatalf("class = %v", s.Class)
	}
}
