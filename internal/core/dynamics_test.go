package core

import (
	"testing"
	"testing/quick"
	"time"

	"vtdynamics/internal/report"
)

var t0 = time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)

// series builds a RankSeries with daily scans.
func series(ranks ...int) RankSeries {
	times := make([]time.Time, len(ranks))
	for i := range ranks {
		times[i] = t0.Add(time.Duration(i) * 24 * time.Hour)
	}
	return RankSeries{Times: times, Ranks: ranks}
}

func TestDelta(t *testing.T) {
	cases := []struct {
		ranks []int
		want  int
	}{
		{nil, 0},
		{[]int{5}, 0},
		{[]int{3, 3, 3}, 0},
		{[]int{1, 5, 3}, 4},
		{[]int{10, 0}, 10},
	}
	for _, c := range cases {
		if got := series(c.ranks...).Delta(); got != c.want {
			t.Fatalf("Delta(%v) = %d, want %d", c.ranks, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	if got := series(4).Classify(); got != Unmeasurable {
		t.Fatalf("single scan = %v", got)
	}
	if got := series(4, 4).Classify(); got != Stable {
		t.Fatalf("constant = %v", got)
	}
	if got := series(4, 5).Classify(); got != Dynamic {
		t.Fatalf("changing = %v", got)
	}
}

func TestClassStrings(t *testing.T) {
	if Stable.String() != "stable" || Dynamic.String() != "dynamic" ||
		Unmeasurable.String() != "unmeasurable" {
		t.Fatal("Class strings wrong")
	}
}

func TestAdjacentDeltas(t *testing.T) {
	got := series(3, 5, 5, 1).AdjacentDeltas()
	want := []int{2, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("AdjacentDeltas = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AdjacentDeltas = %v, want %v", got, want)
		}
	}
	if series(7).AdjacentDeltas() != nil {
		t.Fatal("single-scan deltas should be nil")
	}
}

// Property: every δᵢ <= Δ, and Δ == 0 iff all δᵢ == 0.
func TestQuickDeltaInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		ranks := make([]int, len(raw))
		for i, v := range raw {
			ranks[i] = int(v % 70)
		}
		s := series(ranks...)
		delta := s.Delta()
		allZero := true
		for _, d := range s.AdjacentDeltas() {
			if d > delta {
				return false
			}
			if d != 0 {
				allZero = false
			}
		}
		return (delta == 0) == allZero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpan(t *testing.T) {
	s := series(1, 2, 3)
	if got := s.Span(); got != 48*time.Hour {
		t.Fatalf("Span = %v", got)
	}
	if got := series(1).Span(); got != 0 {
		t.Fatalf("single-scan span = %v", got)
	}
}

func TestConstantRank(t *testing.T) {
	if r, ok := series(7, 7, 7).ConstantRank(); !ok || r != 7 {
		t.Fatalf("ConstantRank = %d, %v", r, ok)
	}
	if _, ok := series(7, 8).ConstantRank(); ok {
		t.Fatal("dynamic series reported constant")
	}
	if _, ok := series().ConstantRank(); ok {
		t.Fatal("empty series reported constant")
	}
}

func TestFinalRank(t *testing.T) {
	if got := series(1, 9, 4).FinalRank(); got != 4 {
		t.Fatalf("FinalRank = %d", got)
	}
	if got := series().FinalRank(); got != 0 {
		t.Fatalf("empty FinalRank = %d", got)
	}
}

func TestAllPairDiffs(t *testing.T) {
	s := series(0, 3, 1)
	pairs := s.AllPairDiffs()
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	// (0,1): diff 3, 1 day; (0,2): diff 1, 2 days; (1,2): diff 2, 1 day.
	if pairs[0].Diff != 3 || pairs[0].Interval != 24*time.Hour {
		t.Fatalf("pair 0 = %+v", pairs[0])
	}
	if pairs[1].Diff != 1 || pairs[1].Interval != 48*time.Hour {
		t.Fatalf("pair 1 = %+v", pairs[1])
	}
	if pairs[2].Diff != 2 {
		t.Fatalf("pair 2 = %+v", pairs[2])
	}
}

func TestFromHistory(t *testing.T) {
	mk := func(rank int, at time.Time) *report.ScanReport {
		results := make([]report.EngineResult, rank)
		for i := range results {
			results[i] = report.EngineResult{
				Engine:  engineName(i),
				Verdict: report.Malicious,
			}
		}
		return &report.ScanReport{
			SHA256:       "h",
			AnalysisDate: at,
			Results:      results,
			AVRank:       rank,
			EnginesTotal: rank,
		}
	}
	h := &report.History{Reports: []*report.ScanReport{
		mk(2, t0), mk(5, t0.Add(time.Hour)),
	}}
	s := FromHistory(h)
	if s.Len() != 2 || s.Ranks[0] != 2 || s.Ranks[1] != 5 {
		t.Fatalf("FromHistory = %+v", s)
	}
}

func engineName(i int) string {
	return "E" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}
