package core

import "time"

// §6: stabilization of AV-Rank and of aggregated labels.
//
// A series "reaches stability within fluctuation range r" if there is
// a scan index k from which the AV-Rank stays within a band of width
// r through the end of the observation — with the suffix required to
// contain at least two scans, so the trivial single-scan suffix does
// not count as evidence of stability. r = 0 is the strict "finally
// constant" criterion (Observation 8: 10.9% of dataset-S samples).

// StabilizationResult describes when a series stabilized.
type StabilizationResult struct {
	// Stable reports whether a qualifying suffix exists.
	Stable bool
	// Index is the 0-based scan index where the stable suffix begins.
	Index int
	// TimeToStability is the interval from the first scan to the
	// stabilization point.
	TimeToStability time.Duration
}

// StabilizeWithin finds the earliest index k <= n-2 such that
// max(ranks[k:]) - min(ranks[k:]) <= r. It returns Stable == false
// for series with fewer than two scans or when no qualifying suffix
// exists.
func (s RankSeries) StabilizeWithin(r int) StabilizationResult {
	n := len(s.Ranks)
	if n < 2 || r < 0 {
		return StabilizationResult{}
	}
	// Walk suffixes from the shortest allowed (k = n-2) to the
	// longest (k = 0), maintaining the running min/max, and remember
	// the smallest k that still satisfies the band. One O(n) pass.
	best := -1
	mn, mx := s.Ranks[n-1], s.Ranks[n-1]
	for k := n - 2; k >= 0; k-- {
		p := s.Ranks[k]
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
		if mx-mn <= r {
			best = k
		} else {
			// Suffixes only grow, so once the band is exceeded no
			// earlier k can qualify.
			break
		}
	}
	if best < 0 {
		return StabilizationResult{}
	}
	return StabilizationResult{
		Stable:          true,
		Index:           best,
		TimeToStability: s.Times[best].Sub(s.Times[0]),
	}
}

// BinaryLabel is the aggregated malicious/benign label of one scan
// under a threshold (§6.2's "B"/"M" coding).
type BinaryLabel byte

const (
	// LabelBenign is coded "B".
	LabelBenign BinaryLabel = 'B'
	// LabelMalicious is coded "M".
	LabelMalicious BinaryLabel = 'M'
)

// LabelSequence derives the sample's B/M sequence under threshold t:
// "M" where AV-Rank >= t, else "B".
func (s RankSeries) LabelSequence(t int) []BinaryLabel {
	out := make([]BinaryLabel, len(s.Ranks))
	for i, p := range s.Ranks {
		if p >= t {
			out[i] = LabelMalicious
		} else {
			out[i] = LabelBenign
		}
	}
	return out
}

// LabelStabilization finds the earliest scan index from which the
// aggregated label under threshold t never changes again, requiring
// — like StabilizeWithin — at least two scans in the stable suffix.
// A series whose last two labels differ has not stabilized.
func (s RankSeries) LabelStabilization(t int) StabilizationResult {
	n := len(s.Ranks)
	if n < 2 {
		return StabilizationResult{}
	}
	labels := s.LabelSequence(t)
	if labels[n-1] != labels[n-2] {
		return StabilizationResult{}
	}
	k := n - 2
	for k > 0 && labels[k-1] == labels[n-1] {
		k--
	}
	return StabilizationResult{
		Stable:          true,
		Index:           k,
		TimeToStability: s.Times[k].Sub(s.Times[0]),
	}
}
