package core

import (
	"time"

	"vtdynamics/internal/report"
)

// Summary is the one-stop per-sample dynamics digest: everything the
// paper's analyses say about a single history, computed in one pass.
// It is what an interactive tool (cmd/vtquery) or a triage pipeline
// wants per sample.
type Summary struct {
	SHA256   string
	FileType string
	Scans    int

	// Class is the §5.1 stable/dynamic/unmeasurable classification.
	Class Class
	// Delta is p_max − p_min over the history.
	Delta int
	// FinalRank is the last observed AV-Rank.
	FinalRank int
	// Span is first-to-last scan interval.
	Span time.Duration

	// Category is the §5.4 class under the supplied threshold.
	Category Category
	// RankStable / LabelStable are the §6 stabilization results
	// (rank at r=0; label under the supplied threshold).
	RankStable  StabilizationResult
	LabelStable StabilizationResult

	// Flips aggregates every engine's flip counts on this sample.
	Flips FlipCounts
	// FlippingEngines counts engines with at least one flip.
	FlippingEngines int
}

// Summarize computes the digest for one history under a labeling
// threshold t (t >= 1). Histories with no reports yield a zero
// Summary with Scans == 0.
func Summarize(h *report.History, t int) Summary {
	s := Summary{
		SHA256:   h.Meta.SHA256,
		FileType: h.Meta.FileType,
		Scans:    len(h.Reports),
	}
	if len(h.Reports) == 0 {
		return s
	}
	if s.FileType == "" {
		s.FileType = h.Reports[0].FileType
	}
	series := FromHistory(h)
	s.Class = series.Classify()
	s.Delta = series.Delta()
	s.FinalRank = series.FinalRank()
	s.Span = series.Span()
	if t >= 1 {
		s.Category = series.Categorize(t)
		s.LabelStable = series.LabelStabilization(t)
	}
	s.RankStable = series.StabilizeWithin(0)
	for _, name := range enginesIn(h) {
		fc := CountFlips(ExtractEngineSeries(h, name))
		s.Flips.Add(fc)
		if fc.Flips() > 0 {
			s.FlippingEngines++
		}
	}
	return s
}
