// Package core implements the paper's primary contribution: the
// label-dynamics analyses of VirusTotal scan results.
//
// The package operates on per-sample scan histories
// (report.History) and provides:
//
//   - §5.1–5.3: stable/dynamic classification, the Δ (max-min) and
//     δᵢ (adjacent-scan) dynamics metrics, stable-span measurement,
//     and pairwise rank-difference/time-interval extraction;
//   - §5.4: white/black/gray threshold categorization;
//   - §6: AV-Rank stabilization under fluctuation ranges r∈{0..5} and
//     B/M label-sequence stabilization under thresholds;
//   - §7.1: per-engine label-flip counting, hazard-flip detection,
//     flip-ratio matrices, and update-coincidence attribution;
//   - §7.2: the engine×scan verdict matrix and pairwise Spearman
//     correlation with strong-group extraction.
//
// All functions are pure and safe for concurrent use.
package core

import (
	"time"

	"vtdynamics/internal/report"
)

// RankSeries is a sample's AV-Rank trajectory: the minimal view most
// analyses need. Times and Ranks are parallel, ascending in time.
type RankSeries struct {
	Times []time.Time
	Ranks []int
}

// FromHistory extracts the rank series of a history.
func FromHistory(h *report.History) RankSeries {
	return RankSeries{Times: h.Times(), Ranks: h.AVRanks()}
}

// Len returns the number of scans.
func (s RankSeries) Len() int { return len(s.Ranks) }

// Delta returns Δ = p_max − p_min over the series (0 for empty or
// single-scan series). Δ = 0 defines a stable sample (§5.1).
func (s RankSeries) Delta() int {
	if len(s.Ranks) == 0 {
		return 0
	}
	mn, mx := s.Ranks[0], s.Ranks[0]
	for _, p := range s.Ranks[1:] {
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
	}
	return mx - mn
}

// IsStable reports whether the sample's AV-Rank never changed across
// its scans. Only meaningful for series with >= 2 scans; a
// single-scan series is vacuously stable but excluded from the
// paper's analysis (its dynamics are unmeasurable).
func (s RankSeries) IsStable() bool { return s.Delta() == 0 }

// AdjacentDeltas returns δᵢ = |pᵢ − pᵢ₋₁| for i = 2..n (n−1 values).
func (s RankSeries) AdjacentDeltas() []int {
	if len(s.Ranks) < 2 {
		return nil
	}
	out := make([]int, len(s.Ranks)-1)
	for i := 1; i < len(s.Ranks); i++ {
		d := s.Ranks[i] - s.Ranks[i-1]
		if d < 0 {
			d = -d
		}
		out[i-1] = d
	}
	return out
}

// Span returns the interval between the first and last scan — the
// "time span" of Figure 4 for stable samples.
func (s RankSeries) Span() time.Duration {
	if len(s.Times) < 2 {
		return 0
	}
	return s.Times[len(s.Times)-1].Sub(s.Times[0])
}

// FinalRank returns the last observed AV-Rank, or 0 for an empty
// series.
func (s RankSeries) FinalRank() int {
	if len(s.Ranks) == 0 {
		return 0
	}
	return s.Ranks[len(s.Ranks)-1]
}

// ConstantRank returns the constant AV-Rank of a stable series and
// true, or 0 and false if the series is dynamic or empty.
func (s RankSeries) ConstantRank() (int, bool) {
	if len(s.Ranks) == 0 || !s.IsStable() {
		return 0, false
	}
	return s.Ranks[0], true
}

// PairDiff is one (time-interval, rank-difference) observation for a
// pair of scans of the same sample — the raw material of Figure 7.
type PairDiff struct {
	Interval time.Duration
	Diff     int
}

// AllPairDiffs returns |pᵢ − pⱼ| with tᵢⱼ for every unordered scan
// pair (i < j) of the series. For a series of n scans this yields
// n(n−1)/2 observations; callers working at scale can cap n.
func (s RankSeries) AllPairDiffs() []PairDiff {
	n := len(s.Ranks)
	if n < 2 {
		return nil
	}
	out := make([]PairDiff, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.Ranks[j] - s.Ranks[i]
			if d < 0 {
				d = -d
			}
			out = append(out, PairDiff{
				Interval: s.Times[j].Sub(s.Times[i]),
				Diff:     d,
			})
		}
	}
	return out
}

// Class labels a sample's dynamics.
type Class int

const (
	// Unmeasurable marks single-scan samples, whose dynamics cannot
	// be observed (88.8% of the paper's dataset).
	Unmeasurable Class = iota
	// Stable samples kept a constant AV-Rank across all scans.
	Stable
	// Dynamic samples changed AV-Rank at least once.
	Dynamic
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Unmeasurable:
		return "unmeasurable"
	case Stable:
		return "stable"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Classify assigns the sample's dynamics class per §5.1.
func (s RankSeries) Classify() Class {
	if len(s.Ranks) < 2 {
		return Unmeasurable
	}
	if s.IsStable() {
		return Stable
	}
	return Dynamic
}
