package core

import (
	"sort"
	"time"

	"vtdynamics/internal/report"
)

// §5.5 cause (i) — engine latency: "an engine may not be able to
// detect a malicious sample at first ... the previously ineffective
// engines may eventually update their detection capabilities and
// change the label." This file quantifies that learning process from
// observed histories: for every (engine, sample) whose first defined
// verdict was Benign and that later flipped to Malicious, the
// observed conversion latency is the interval from the sample's first
// scan to the first Malicious verdict.

// ConversionObservation is one observed 0→1 learning event.
type ConversionObservation struct {
	Engine string
	// Latency is the interval from the sample's first scan to the
	// engine's first malicious verdict. It upper-bounds the engine's
	// true latency (the flip is only *observed* at the next scan).
	Latency time.Duration
}

// ObservedConversions extracts every engine's conversion event from a
// history. Engines already detecting at their first defined verdict
// contribute nothing (their latency is unobservable: it predates the
// first scan).
func ObservedConversions(h *report.History) []ConversionObservation {
	if len(h.Reports) < 2 {
		return nil
	}
	first := h.Reports[0].AnalysisDate
	// state: 0 unseen, 1 benign-first (eligible), 2 done.
	state := make(map[string]int)
	var out []ConversionObservation
	for _, r := range h.Reports {
		for _, er := range r.Results {
			if er.Verdict == report.Undetected {
				continue
			}
			switch state[er.Engine] {
			case 0:
				if er.Verdict == report.Benign {
					state[er.Engine] = 1
				} else {
					state[er.Engine] = 2 // detected at first sight
				}
			case 1:
				if er.Verdict == report.Malicious {
					out = append(out, ConversionObservation{
						Engine:  er.Engine,
						Latency: r.AnalysisDate.Sub(first),
					})
					state[er.Engine] = 2
				}
			}
		}
	}
	return out
}

// LatencyAccumulator aggregates conversion latencies per engine.
type LatencyAccumulator struct {
	byEngine map[string][]float64 // days
}

// NewLatencyAccumulator returns an empty accumulator.
func NewLatencyAccumulator() *LatencyAccumulator {
	return &LatencyAccumulator{byEngine: make(map[string][]float64)}
}

// AddHistory extracts and accumulates the history's conversions.
func (a *LatencyAccumulator) AddHistory(h *report.History) {
	for _, obs := range ObservedConversions(h) {
		a.byEngine[obs.Engine] = append(a.byEngine[obs.Engine], obs.Latency.Hours()/24)
	}
}

// Merge folds another accumulator into this one.
func (a *LatencyAccumulator) Merge(other *LatencyAccumulator) {
	for eng, days := range other.byEngine {
		a.byEngine[eng] = append(a.byEngine[eng], days...)
	}
}

// EngineLatency is one engine's observed learning profile.
type EngineLatency struct {
	Engine      string
	Conversions int
	MeanDays    float64
	MedianDays  float64
}

// PerEngine returns each engine's profile, sorted by engine name.
// Engines with fewer than minConversions observations are skipped
// (their statistics would be noise).
func (a *LatencyAccumulator) PerEngine(minConversions int) []EngineLatency {
	engines := make([]string, 0, len(a.byEngine))
	for e := range a.byEngine {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	var out []EngineLatency
	for _, e := range engines {
		days := a.byEngine[e]
		if len(days) < minConversions {
			continue
		}
		out = append(out, EngineLatency{
			Engine:      e,
			Conversions: len(days),
			MeanDays:    mean(days),
			MedianDays:  median(days),
		})
	}
	return out
}

// AllDays returns every observed latency in days, unsorted.
func (a *LatencyAccumulator) AllDays() []float64 {
	var out []float64
	for _, days := range a.byEngine {
		out = append(out, days...)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
