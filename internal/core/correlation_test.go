package core

import (
	"testing"
	"time"

	"vtdynamics/internal/report"
)

func addScan(m *VerdictMatrix, verdicts map[string]report.Verdict) {
	var results []report.EngineResult
	for e, v := range verdicts {
		results = append(results, report.EngineResult{Engine: e, Verdict: v})
	}
	m.AddReport(&report.ScanReport{
		SHA256:       "h",
		AnalysisDate: t0.Add(time.Duration(m.Rows()) * time.Hour),
		Results:      results,
		AVRank:       report.ComputeAVRank(results),
		EnginesTotal: report.CountActive(results),
	})
}

func TestVerdictMatrixShape(t *testing.T) {
	m := NewVerdictMatrix([]string{"A", "B"})
	addScan(m, map[string]report.Verdict{"A": report.Malicious})
	addScan(m, map[string]report.Verdict{"A": report.Benign, "B": report.Malicious})
	if m.Rows() != 2 {
		t.Fatalf("rows = %d", m.Rows())
	}
	colA, ok := m.Column("A")
	if !ok || colA[0] != 1 || colA[1] != 0 {
		t.Fatalf("col A = %v", colA)
	}
	colB, _ := m.Column("B")
	if colB[0] != -1 || colB[1] != 1 {
		t.Fatalf("col B = %v (absent engine should be undetected)", colB)
	}
	if _, ok := m.Column("missing"); ok {
		t.Fatal("missing column returned ok")
	}
}

func TestVerdictMatrixIgnoresUnknownEngines(t *testing.T) {
	m := NewVerdictMatrix([]string{"A"})
	addScan(m, map[string]report.Verdict{"A": report.Malicious, "Rogue": report.Malicious})
	if m.Rows() != 1 {
		t.Fatalf("rows = %d", m.Rows())
	}
	colA, _ := m.Column("A")
	if colA[0] != 1 {
		t.Fatalf("col A = %v", colA)
	}
}

func TestCorrelationsPerfectPair(t *testing.T) {
	m := NewVerdictMatrix([]string{"X", "Y", "Z"})
	// X and Y always agree; Z alternates independently.
	patterns := []struct{ x, y, z report.Verdict }{
		{report.Malicious, report.Malicious, report.Benign},
		{report.Benign, report.Benign, report.Malicious},
		{report.Malicious, report.Malicious, report.Malicious},
		{report.Benign, report.Benign, report.Benign},
		{report.Malicious, report.Malicious, report.Benign},
		{report.Benign, report.Benign, report.Benign},
	}
	for _, p := range patterns {
		addScan(m, map[string]report.Verdict{"X": p.x, "Y": p.y, "Z": p.z})
	}
	pairs, err := m.Correlations()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	var xy, xz PairCorrelation
	for _, p := range pairs {
		switch {
		case p.A == "X" && p.B == "Y":
			xy = p
		case p.A == "X" && p.B == "Z":
			xz = p
		}
	}
	if xy.Rho < 0.999 {
		t.Fatalf("identical engines rho = %v", xy.Rho)
	}
	if xz.Rho > 0.8 {
		t.Fatalf("independent engines rho = %v", xz.Rho)
	}
}

func TestCorrelationsConstantColumn(t *testing.T) {
	m := NewVerdictMatrix([]string{"C", "D"})
	addScan(m, map[string]report.Verdict{"C": report.Benign, "D": report.Malicious})
	addScan(m, map[string]report.Verdict{"C": report.Benign, "D": report.Benign})
	pairs, err := m.Correlations()
	if err != nil {
		t.Fatal(err)
	}
	if pairs[0].Rho != 0 {
		t.Fatalf("constant column rho = %v, want 0", pairs[0].Rho)
	}
}

func TestCorrelationsTooFewRows(t *testing.T) {
	m := NewVerdictMatrix([]string{"A", "B"})
	addScan(m, map[string]report.Verdict{"A": report.Benign, "B": report.Benign})
	if _, err := m.Correlations(); err == nil {
		t.Fatal("expected error with a single row")
	}
}

func TestStrongGroups(t *testing.T) {
	pairs := []PairCorrelation{
		{A: "Avast", B: "AVG", Rho: 0.98},
		{A: "BitDefender", B: "GData", Rho: 0.95},
		{A: "GData", B: "FireEye", Rho: 0.92},
		{A: "Avast", B: "BitDefender", Rho: 0.3},
		{A: "Paloalto", B: "APEX", Rho: 0.99},
		{A: "Lonely", B: "Avast", Rho: 0.79}, // below threshold
	}
	groups := StrongGroups(pairs, 0.8)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != "BitDefender" {
		t.Fatalf("largest group = %v", groups[0])
	}
	g := StrongCorrelationGraph(pairs, 0.8)
	if g.HasEdge("Lonely", "Avast") {
		t.Fatal("sub-threshold edge included")
	}
	if w, ok := g.Weight("Paloalto", "APEX"); !ok || w != 0.99 {
		t.Fatalf("edge weight = %v %v", w, ok)
	}
}

func TestAddHistoryAppendsAllScans(t *testing.T) {
	m := NewVerdictMatrix([]string{"A"})
	h := historyFrom("TXT", map[string]string{"A": "BMB"})
	m.AddHistory(h)
	if m.Rows() != 3 {
		t.Fatalf("rows = %d", m.Rows())
	}
}
