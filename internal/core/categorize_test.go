package core

import (
	"testing"
	"testing/quick"
)

func TestCategorizeBasic(t *testing.T) {
	// Ranks 0..2, threshold 3: always benign -> white.
	if got := series(0, 2, 1).Categorize(3); got != White {
		t.Fatalf("got %v, want white", got)
	}
	// Ranks all >= t -> black.
	if got := series(5, 7, 5).Categorize(5); got != Black {
		t.Fatalf("got %v, want black", got)
	}
	// Straddling -> gray.
	if got := series(2, 6).Categorize(5); got != Gray {
		t.Fatalf("got %v, want gray", got)
	}
}

func TestCategorizeBoundary(t *testing.T) {
	// AV-Rank exactly t labels malicious (rule: p >= t), so a
	// constant series at t is black, and a series hitting t once from
	// below is gray.
	if got := series(5, 5).Categorize(5); got != Black {
		t.Fatalf("constant at t = %v, want black", got)
	}
	if got := series(4, 5).Categorize(5); got != Gray {
		t.Fatalf("4,5 at t=5 = %v, want gray", got)
	}
	if got := series(4, 4).Categorize(5); got != White {
		t.Fatalf("below t = %v, want white", got)
	}
}

func TestCategorizePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { series().Categorize(5) })
	mustPanic("t=0", func() { series(1).Categorize(0) })
}

func TestStableSamplesNeverGray(t *testing.T) {
	// Stable samples are always labeled consistently: never gray, at
	// any threshold (the reason §5.4 only studies dynamic samples).
	for _, rank := range []int{0, 1, 5, 30, 69} {
		s := series(rank, rank, rank)
		for th := 1; th <= 50; th++ {
			if got := s.Categorize(th); got == Gray {
				t.Fatalf("stable sample rank %d gray at t=%d", rank, th)
			}
		}
	}
}

// Property: the three categories partition any series at any valid
// threshold, and gray iff p_min < t <= p_max.
func TestQuickCategorizePartition(t *testing.T) {
	f := func(raw []uint8, tRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		th := int(tRaw%50) + 1
		ranks := make([]int, len(raw))
		mn, mx := 255, 0
		for i, v := range raw {
			ranks[i] = int(v % 70)
			if ranks[i] < mn {
				mn = ranks[i]
			}
			if ranks[i] > mx {
				mx = ranks[i]
			}
		}
		got := series(ranks...).Categorize(th)
		switch {
		case mx < th:
			return got == White
		case mn >= th:
			return got == Black
		default:
			return got == Gray
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategorySweep(t *testing.T) {
	population := []RankSeries{
		series(0, 0),   // white for all t >= 1
		series(10, 12), // black for t <= 10, gray for 11..12, white for t > 12
		series(3, 30),  // gray for 4..30, black for t <= 3, white for t > 30
	}
	thresholds := []int{1, 5, 11, 31}
	counts := CategorySweep(population, thresholds)
	if len(counts) != 4 {
		t.Fatalf("sweep length = %d", len(counts))
	}
	// t=1: s1 white, s2 black, s3 black.
	if counts[0].White != 1 || counts[0].Black != 2 || counts[0].Gray != 0 {
		t.Fatalf("t=1: %+v", counts[0])
	}
	// t=5: s1 white, s2 black, s3 gray.
	if counts[1].White != 1 || counts[1].Black != 1 || counts[1].Gray != 1 {
		t.Fatalf("t=5: %+v", counts[1])
	}
	// t=11: s1 white, s2 gray, s3 gray.
	if counts[2].White != 1 || counts[2].Gray != 2 {
		t.Fatalf("t=11: %+v", counts[2])
	}
	// t=31: all white.
	if counts[3].White != 3 {
		t.Fatalf("t=31: %+v", counts[3])
	}
	for _, c := range counts {
		if c.Total() != 3 {
			t.Fatalf("total = %d", c.Total())
		}
	}
}

func TestCategoryFractions(t *testing.T) {
	c := CategoryCounts{White: 2, Black: 3, Gray: 5}
	if c.GrayFraction() != 0.5 || c.WhiteFraction() != 0.2 || c.BlackFraction() != 0.3 {
		t.Fatalf("fractions: %v %v %v", c.GrayFraction(), c.WhiteFraction(), c.BlackFraction())
	}
	var zero CategoryCounts
	if zero.GrayFraction() != 0 || zero.WhiteFraction() != 0 || zero.BlackFraction() != 0 {
		t.Fatal("zero counts should give zero fractions")
	}
}

func TestCategoryStrings(t *testing.T) {
	if White.String() != "white" || Black.String() != "black" || Gray.String() != "gray" {
		t.Fatal("category strings wrong")
	}
}

// Property: CategorySweep result agrees with per-sample Categorize.
func TestQuickSweepConsistent(t *testing.T) {
	f := func(raw [][]uint8) bool {
		var pop []RankSeries
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			ranks := make([]int, len(r))
			for i, v := range r {
				ranks[i] = int(v % 70)
			}
			pop = append(pop, series(ranks...))
		}
		ths := []int{1, 7, 24, 50}
		counts := CategorySweep(pop, ths)
		for i, th := range ths {
			var w, b, g int
			for _, s := range pop {
				switch s.Categorize(th) {
				case White:
					w++
				case Black:
					b++
				case Gray:
					g++
				}
			}
			if counts[i].White != w || counts[i].Black != b || counts[i].Gray != g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (cross-invariant): a series is gray at threshold t exactly
// when its B/M label sequence under t contains both labels — the
// categorization and the stabilization views of §5.4/§6.2 must agree.
func TestQuickGrayIffMixedLabels(t *testing.T) {
	f := func(raw []uint8, tRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		th := int(tRaw%50) + 1
		ranks := make([]int, len(raw))
		for i, v := range raw {
			ranks[i] = int(v % 70)
		}
		s := series(ranks...)
		labels := s.LabelSequence(th)
		hasB, hasM := false, false
		for _, l := range labels {
			if l == LabelBenign {
				hasB = true
			} else {
				hasM = true
			}
		}
		return (s.Categorize(th) == Gray) == (hasB && hasM)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
