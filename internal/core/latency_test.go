package core

import (
	"math"
	"testing"
	"time"
)

func TestObservedConversionsBasic(t *testing.T) {
	// Engine A: B then M at day 1 -> one conversion with 1-day latency.
	// Engine B: M from the start -> unobservable, no event.
	// Engine C: B throughout -> no event.
	h := historyFrom("TXT", map[string]string{
		"A": "BMM",
		"B": "MMM",
		"C": "BBB",
	})
	obs := ObservedConversions(h)
	if len(obs) != 1 {
		t.Fatalf("observations = %v", obs)
	}
	if obs[0].Engine != "A" || obs[0].Latency != 24*time.Hour {
		t.Fatalf("obs = %+v", obs[0])
	}
}

func TestObservedConversionsOncePerEngine(t *testing.T) {
	// A converts, regresses, converts again: only the first
	// conversion is a learning event.
	h := historyFrom("TXT", map[string]string{"A": "BMBM"})
	obs := ObservedConversions(h)
	if len(obs) != 1 {
		t.Fatalf("observations = %v", obs)
	}
}

func TestObservedConversionsSkipsUndetected(t *testing.T) {
	// First defined verdict is benign (after a gap), conversion at
	// day 3.
	h := historyFrom("TXT", map[string]string{"A": "UBUM"})
	obs := ObservedConversions(h)
	if len(obs) != 1 || obs[0].Latency != 3*24*time.Hour {
		t.Fatalf("observations = %v", obs)
	}
	// Malicious-first after a gap: unobservable.
	h = historyFrom("TXT", map[string]string{"A": "UMBB"})
	if got := ObservedConversions(h); len(got) != 0 {
		t.Fatalf("observations = %v", got)
	}
}

func TestObservedConversionsSingleScan(t *testing.T) {
	h := historyFrom("TXT", map[string]string{"A": "B"})
	if got := ObservedConversions(h); got != nil {
		t.Fatalf("single-scan observations = %v", got)
	}
}

func TestLatencyAccumulator(t *testing.T) {
	a := NewLatencyAccumulator()
	a.AddHistory(historyFrom("TXT", map[string]string{"A": "BMM", "B": "BBM"}))
	a.AddHistory(historyFrom("TXT", map[string]string{"A": "BBBM"}))
	per := a.PerEngine(1)
	if len(per) != 2 {
		t.Fatalf("engines = %v", per)
	}
	// A: latencies 1 and 3 days -> mean 2, median 2.
	var engA EngineLatency
	for _, e := range per {
		if e.Engine == "A" {
			engA = e
		}
	}
	if engA.Conversions != 2 || math.Abs(engA.MeanDays-2) > 1e-9 || math.Abs(engA.MedianDays-2) > 1e-9 {
		t.Fatalf("A = %+v", engA)
	}
	// minConversions filter.
	if got := a.PerEngine(2); len(got) != 1 || got[0].Engine != "A" {
		t.Fatalf("filtered = %v", got)
	}
	if got := len(a.AllDays()); got != 3 {
		t.Fatalf("all days = %d", got)
	}
}

func TestLatencyMerge(t *testing.T) {
	a := NewLatencyAccumulator()
	a.AddHistory(historyFrom("TXT", map[string]string{"A": "BM"}))
	b := NewLatencyAccumulator()
	b.AddHistory(historyFrom("TXT", map[string]string{"A": "BBM"}))
	a.Merge(b)
	per := a.PerEngine(2)
	if len(per) != 1 || per[0].Conversions != 2 {
		t.Fatalf("merged = %v", per)
	}
}

func TestKappaAgreements(t *testing.T) {
	m := NewVerdictMatrix([]string{"X", "Y", "Z"})
	// X and Y agree perfectly where both defined; Z independent.
	h := historyFrom("TXT", map[string]string{
		"X": "MBMBMB",
		"Y": "MBMBUB",
		"Z": "MMBBMB",
	})
	m.AddHistory(h)
	pairs, err := m.KappaAgreements()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	var xy PairAgreement
	for _, p := range pairs {
		if p.A == "X" && p.B == "Y" {
			xy = p
		}
	}
	if xy.N != 5 {
		t.Fatalf("jointly defined N = %d, want 5 (one Y scan undetected)", xy.N)
	}
	if math.Abs(xy.Kappa-1) > 1e-9 {
		t.Fatalf("perfect agreement kappa = %v", xy.Kappa)
	}
}

func TestKappaAgreementsTooFewRows(t *testing.T) {
	m := NewVerdictMatrix([]string{"A", "B"})
	if _, err := m.KappaAgreements(); err == nil {
		t.Fatal("expected error with no rows")
	}
}

func TestStrongKappaGroups(t *testing.T) {
	pairs := []PairAgreement{
		{A: "A", B: "B", Kappa: 0.9},
		{A: "B", B: "C", Kappa: 0.85},
		{A: "C", B: "D", Kappa: 0.5},
	}
	groups := StrongKappaGroups(pairs, 0.8)
	if len(groups) == 0 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
}
