package core

// §5.4: impact of AV-Rank dynamics on threshold-based label
// aggregation. Given a voting threshold t, a sample is labeled
// malicious at a given scan iff its AV-Rank >= t. Across a sample's
// whole history this induces three categories:
//
//   - White: every scan labels it benign  (p_max <  t)
//   - Black: every scan labels it malicious (p_min >= t)
//   - Gray:  the label depends on *when* you scan.
//
// Note on conventions: the paper's prose says "p_max <= t" for white
// but glosses it as "all the AV-Ranks of the sample are less than t";
// since the labeling rule is "malicious iff AV-Rank >= t", white must
// be p_max < t for the categories to partition. We follow the gloss.

// Category is a sample's stability class under a threshold.
type Category int

const (
	// White samples are labeled benign at every scan.
	White Category = iota
	// Black samples are labeled malicious at every scan.
	Black
	// Gray samples would receive inconsistent labels depending on
	// scan time — the failure mode threshold selection must minimize.
	Gray
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case White:
		return "white"
	case Black:
		return "black"
	case Gray:
		return "gray"
	default:
		return "unknown"
	}
}

// Categorize classifies the series under threshold t. It panics on an
// empty series (categorization of nothing is meaningless) and
// requires t >= 1 (a threshold of 0 marks everything malicious).
func (s RankSeries) Categorize(t int) Category {
	if len(s.Ranks) == 0 {
		panic("core: Categorize on empty series")
	}
	if t < 1 {
		panic("core: threshold must be >= 1")
	}
	mn, mx := s.Ranks[0], s.Ranks[0]
	for _, p := range s.Ranks[1:] {
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
	}
	switch {
	case mx < t:
		return White
	case mn >= t:
		return Black
	default:
		return Gray
	}
}

// CategoryCounts tallies a population under one threshold.
type CategoryCounts struct {
	Threshold          int
	White, Black, Gray int
}

// Total returns the population size.
func (c CategoryCounts) Total() int { return c.White + c.Black + c.Gray }

// GrayFraction returns the gray share, the quantity Figure 8 sweeps.
func (c CategoryCounts) GrayFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Gray) / float64(t)
}

// WhiteFraction returns the white share.
func (c CategoryCounts) WhiteFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.White) / float64(t)
}

// BlackFraction returns the black share.
func (c CategoryCounts) BlackFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Black) / float64(t)
}

// CategorySweep classifies every series under each threshold,
// returning one CategoryCounts per threshold — the series behind
// Figure 8(a)/(b).
func CategorySweep(series []RankSeries, thresholds []int) []CategoryCounts {
	out := make([]CategoryCounts, len(thresholds))
	for i, t := range thresholds {
		out[i].Threshold = t
	}
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		// Compute min/max once per sample, reuse across thresholds.
		mn, mx := s.Ranks[0], s.Ranks[0]
		for _, p := range s.Ranks[1:] {
			if p < mn {
				mn = p
			}
			if p > mx {
				mx = p
			}
		}
		for i, t := range thresholds {
			switch {
			case mx < t:
				out[i].White++
			case mn >= t:
				out[i].Black++
			default:
				out[i].Gray++
			}
		}
	}
	return out
}
