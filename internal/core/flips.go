package core

import (
	"sort"
	"time"

	"vtdynamics/internal/report"
)

// §7.1: stability of individual engines. For a sample s and engine e
// the label sequence is l_1..l_n over the sample's scans; a change
// between two consecutive defined labels (0→1 or 1→0) is a flip, and
// the three-scan patterns 0→1→0 / 1→0→1 are hazard flips. Undetected
// entries (engine inactive for that scan) are skipped rather than
// treated as benign, so activity gaps do not masquerade as flips.

// EngineSeries is one engine's trajectory over one sample's scans.
type EngineSeries struct {
	Engine   string
	Times    []time.Time
	Labels   []report.Verdict
	Versions []int
}

// ExtractEngineSeries pulls the named engine's series from a history.
// Scans where the engine is absent contribute Undetected entries.
func ExtractEngineSeries(h *report.History, engineName string) EngineSeries {
	s := EngineSeries{
		Engine:   engineName,
		Times:    make([]time.Time, len(h.Reports)),
		Labels:   make([]report.Verdict, len(h.Reports)),
		Versions: make([]int, len(h.Reports)),
	}
	for i, r := range h.Reports {
		s.Times[i] = r.AnalysisDate
		s.Labels[i] = report.Undetected
		for _, er := range r.Results {
			if er.Engine == engineName {
				s.Labels[i] = er.Verdict
				s.Versions[i] = er.SignatureVersion
				break
			}
		}
	}
	return s
}

// FlipCounts aggregates an engine's flip behaviour.
type FlipCounts struct {
	// Up counts 0→1 flips, Down counts 1→0 flips.
	Up, Down int
	// Hazard01 counts 0→1→0 patterns; Hazard10 counts 1→0→1.
	Hazard01, Hazard10 int
	// Opportunities is the number of consecutive defined label pairs
	// — the denominator of the flip ratio.
	Opportunities int
	// UpdateCoincident counts flips where the engine's signature
	// version changed between the two scans (§5.5 cause ii).
	UpdateCoincident int
}

// Flips returns the total flip count.
func (f FlipCounts) Flips() int { return f.Up + f.Down }

// Hazards returns the total hazard-flip count.
func (f FlipCounts) Hazards() int { return f.Hazard01 + f.Hazard10 }

// Ratio returns flips per opportunity (0 when no opportunities).
func (f FlipCounts) Ratio() float64 {
	if f.Opportunities == 0 {
		return 0
	}
	return float64(f.Flips()) / float64(f.Opportunities)
}

// Add accumulates other into f.
func (f *FlipCounts) Add(other FlipCounts) {
	f.Up += other.Up
	f.Down += other.Down
	f.Hazard01 += other.Hazard01
	f.Hazard10 += other.Hazard10
	f.Opportunities += other.Opportunities
	f.UpdateCoincident += other.UpdateCoincident
}

// CountFlips scans the series, skipping Undetected entries, and
// tallies flips, hazards, and update coincidence.
func CountFlips(s EngineSeries) FlipCounts {
	var fc FlipCounts
	prevIdx := -1                    // index of last defined label
	prev2Label := report.Verdict(-2) // label before prev (defined only)
	for i, l := range s.Labels {
		if l == report.Undetected {
			continue
		}
		if prevIdx >= 0 {
			fc.Opportunities++
			prev := s.Labels[prevIdx]
			if l != prev {
				if prev == report.Benign {
					fc.Up++
				} else {
					fc.Down++
				}
				if s.Versions[i] != s.Versions[prevIdx] {
					fc.UpdateCoincident++
				}
				// Hazard: two consecutive opposite flips.
				if prev2Label == l {
					if l == report.Benign {
						fc.Hazard01++ // 0→1→0
					} else {
						fc.Hazard10++ // 1→0→1
					}
				}
			}
			prev2Label = prev
		}
		prevIdx = i
	}
	return fc
}

// FlipMatrix accumulates flip counts per (engine, file type) — the
// data behind Figure 10's heatmap — plus per-engine totals.
type FlipMatrix struct {
	// cells maps engine -> fileType -> counts.
	cells map[string]map[string]*FlipCounts
}

// NewFlipMatrix returns an empty accumulator.
func NewFlipMatrix() *FlipMatrix {
	return &FlipMatrix{cells: make(map[string]map[string]*FlipCounts)}
}

// AddHistory extracts every engine appearing in the history and
// accumulates its flip counts under the history's file type.
func (m *FlipMatrix) AddHistory(h *report.History) {
	if len(h.Reports) < 2 {
		return
	}
	ft := h.Reports[0].FileType
	for _, name := range enginesIn(h) {
		fc := CountFlips(ExtractEngineSeries(h, name))
		m.add(name, ft, fc)
	}
}

func (m *FlipMatrix) add(engineName, fileType string, fc FlipCounts) {
	row, ok := m.cells[engineName]
	if !ok {
		row = make(map[string]*FlipCounts)
		m.cells[engineName] = row
	}
	cell, ok := row[fileType]
	if !ok {
		cell = &FlipCounts{}
		row[fileType] = cell
	}
	cell.Add(fc)
}

// Merge folds another matrix into this one (used to combine
// per-worker accumulators).
func (m *FlipMatrix) Merge(other *FlipMatrix) {
	for eng, row := range other.cells {
		for ft, fc := range row {
			m.add(eng, ft, *fc)
		}
	}
}

// Cell returns the accumulated counts for (engine, fileType).
func (m *FlipMatrix) Cell(engineName, fileType string) FlipCounts {
	if row, ok := m.cells[engineName]; ok {
		if c, ok := row[fileType]; ok {
			return *c
		}
	}
	return FlipCounts{}
}

// EngineTotal sums an engine's counts over all file types.
func (m *FlipMatrix) EngineTotal(engineName string) FlipCounts {
	var total FlipCounts
	for _, c := range m.cells[engineName] {
		total.Add(*c)
	}
	return total
}

// Total sums every cell.
func (m *FlipMatrix) Total() FlipCounts {
	var total FlipCounts
	for _, row := range m.cells {
		for _, c := range row {
			total.Add(*c)
		}
	}
	return total
}

// Engines returns the engines present, sorted.
func (m *FlipMatrix) Engines() []string {
	out := make([]string, 0, len(m.cells))
	for e := range m.cells {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// FileTypes returns the file types present, sorted.
func (m *FlipMatrix) FileTypes() []string {
	seen := map[string]bool{}
	for _, row := range m.cells {
		for ft := range row {
			seen[ft] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ft := range seen {
		out = append(out, ft)
	}
	sort.Strings(out)
	return out
}

// enginesIn returns the union of engine names across the history's
// reports, in first-appearance order.
func enginesIn(h *report.History) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range h.Reports {
		for _, er := range r.Results {
			if !seen[er.Engine] {
				seen[er.Engine] = true
				names = append(names, er.Engine)
			}
		}
	}
	return names
}
