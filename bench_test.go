// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus micro-benchmarks of the pipeline's hot
// paths. Each experiment benchmark reports its headline statistic as
// a custom metric so `go test -bench` output doubles as a compact
// reproduction report (EXPERIMENTS.md records the full
// paper-vs-measured comparison).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment corpora are built once and shared; the first
// benchmark to need a corpus pays its construction cost inside a
// b.ResetTimer window, so per-iteration numbers measure the analysis,
// not the setup.
package vtdynamics_test

import (
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"vtdynamics"
	"vtdynamics/internal/experiments"
)

// benchRunner is shared across benchmarks; sized so the whole suite
// completes in minutes while keeping the paper's shapes measurable.
var (
	benchOnce   sync.Once
	benchShared *experiments.Runner
)

func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		r, err := experiments.NewRunner(experiments.Config{
			Seed:             1,
			PopulationSize:   200_000,
			DynamicsSize:     20_000,
			ServiceSize:      3_000,
			CorrelationScans: 20_000,
		})
		if err != nil {
			panic(err)
		}
		benchShared = r
	})
	return benchShared
}

// BenchmarkTable1APIUpdateRules probes the three APIs' field-update
// semantics (Table 1).
func BenchmarkTable1APIUpdateRules(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Table1APIUpdateRules()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Matches() {
			b.Fatal("Table 1 mismatch")
		}
	}
}

// BenchmarkTable2DatasetOverview runs the full collection pipeline:
// workload → service → per-minute feed → collector → compressed
// store (Table 2).
func BenchmarkTable2DatasetOverview(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		// b.TempDir() ties cleanup to the benchmark even on Fatal
		// paths; per-iteration subdirectories keep runs independent.
		dir := filepath.Join(b.TempDir(), strconv.Itoa(i))
		res, err := r.Table2DatasetOverview(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CompressionRatio, "compressionX")
		b.ReportMetric(float64(res.TotalReports), "reports")
	}
}

// BenchmarkTable3FileTypeDistribution tallies the file-type mix
// (Table 3).
func BenchmarkTable3FileTypeDistribution(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Table3FileTypeDist()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Top20Share*100, "top20pct")
	}
}

// BenchmarkFigure1ReportsPerSampleCDF builds the reports-per-sample
// CDF (Figure 1).
func BenchmarkFigure1ReportsPerSampleCDF(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure1ReportsCDF()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SingleReport*100, "single-report-pct")
	}
}

// BenchmarkFigure2StableDynamicReportCDF classifies multi-report
// samples and builds the per-class CDFs (Figure 2 / Observation 1).
func BenchmarkFigure2StableDynamicReportCDF(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure2StableDynamic()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StableFraction()*100, "stable-pct")
	}
}

// BenchmarkFigure3StableAVRankCDF measures the stable-sample AV-Rank
// distribution (Figure 3).
func BenchmarkFigure3StableAVRankCDF(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure3StableAVRank()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RankZero*100, "rank0-pct")
	}
}

// BenchmarkFigure4StableTimeSpanByAVRank builds the span-by-rank
// boxplots (Figure 4).
func BenchmarkFigure4StableTimeSpanByAVRank(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure4StableTimeSpan()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BenignMeanDays, "benign-mean-days")
	}
}

// BenchmarkFigure5DeltaCDF computes the δ/Δ distributions (Figure 5).
func BenchmarkFigure5DeltaCDF(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure5DeltaCDF()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeltaZeroShare*100, "delta0-pct")
	}
}

// BenchmarkFigure6DeltaByFileType builds the per-type dynamics
// boxplots (Figure 6).
func BenchmarkFigure6DeltaByFileType(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6DeltaByType()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.RowFor(vtdynamics.FileTypeWin32EXE); ok {
			b.ReportMetric(row.Big.Mean, "exe-bigdelta-mean")
		}
	}
}

// BenchmarkFigure7DiffVsInterval extracts every scan pair and
// correlates difference with interval (Figure 7).
func BenchmarkFigure7DiffVsInterval(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure7DiffVsInterval()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Spearman.Rho, "bucket-rho")
	}
}

// BenchmarkFigure8aGrayOverall sweeps thresholds 1..50 over all
// dynamic samples (Figure 8a).
func BenchmarkFigure8aGrayOverall(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		all, _, err := r.Figure8Categories()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(all.MaxGray*100, "maxgray-pct")
	}
}

// BenchmarkFigure8bGrayPE sweeps thresholds over the PE subset
// (Figure 8b).
func BenchmarkFigure8bGrayPE(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		_, pe, err := r.Figure8Categories()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pe.MaxGray*100, "maxgray-pct")
	}
}

// BenchmarkFigure9aLabelStabilizationAll measures label stabilization
// across thresholds for all dataset-S samples (Figure 9a).
func BenchmarkFigure9aLabelStabilizationAll(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9LabelStability(false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].StableShare*100, "stable-t2-pct")
	}
}

// BenchmarkFigure9bLabelStabilizationGT2 excludes two-scan samples
// (Figure 9b).
func BenchmarkFigure9bLabelStabilizationGT2(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9LabelStability(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].StableShare*100, "stable-t2-pct")
	}
}

// BenchmarkObservation8AVRankStabilization measures AV-Rank
// stabilization under fluctuation ranges r = 0..5 (Observation 8).
func BenchmarkObservation8AVRankStabilization(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Observation8Stability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].StableShare*100, "r0-stable-pct")
		b.ReportMetric(res.Rows[5].StableShare*100, "r5-stable-pct")
	}
}

// BenchmarkFigure10FlipRatioMatrix accumulates the per-(engine, type)
// flip matrix (Figure 10).
func BenchmarkFigure10FlipRatioMatrix(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure10FlipRatios()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ArcabitELF*100, "arcabit-elf-pct")
	}
}

// BenchmarkSection71LabelFlips runs the flip census including hazard
// flips (§7.1.1).
func BenchmarkSection71LabelFlips(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Section71Flips()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Total.Flips()), "flips")
		b.ReportMetric(float64(res.Total.Hazards()), "hazards")
	}
}

// BenchmarkSection55FlipCauses measures update-coincident flips
// (§5.5).
func BenchmarkSection55FlipCauses(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Section55FlipCauses()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Share*100, "update-coincident-pct")
	}
}

// BenchmarkFigure11EngineCorrelationOverall computes the full
// pairwise Spearman matrix and strong groups (Figure 11).
func BenchmarkFigure11EngineCorrelationOverall(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure11Correlation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InvolvedEngines), "involved-engines")
	}
}

// BenchmarkFigure12PerTypeCorrelationGroups computes the per-type
// group structure (Figure 12 / Tables 4–8).
func BenchmarkFigure12PerTypeCorrelationGroups(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Figure12PerTypeGroups()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.PerType)), "types")
	}
}

// BenchmarkStrategyStability compares the §3.1 aggregation
// strategies' exposure to label churn.
func BenchmarkStrategyStability(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.StrategyStability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].EverFlipped*100, "t1-everflipped-pct")
	}
}

// BenchmarkFamilyStability measures AVClass-style family-label churn
// against binary-label churn.
func BenchmarkFamilyStability(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.FamilyStability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EverChanged*100, "family-churn-pct")
		b.ReportMetric(res.BinaryEverChanged*100, "binary-churn-pct")
	}
}

// BenchmarkLabelPrediction trains and evaluates the learned
// aggregator (§3.1's ML line).
func BenchmarkLabelPrediction(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.LabelPrediction()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Learned.Accuracy()*100, "accuracy-pct")
		b.ReportMetric(res.GroupWeightRatio, "group-weight-ratio")
	}
}

// BenchmarkEngineLatencyProfiles extracts every observed 0→1
// conversion (§5.5 cause i).
func BenchmarkEngineLatencyProfiles(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.EngineLatencyProfiles()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overall.Median, "median-days")
	}
}

// BenchmarkKappaRobustness recomputes the group structure under
// Cohen's kappa.
func BenchmarkKappaRobustness(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.KappaRobustness()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AgreeingPairs), "agreeing-pairs")
	}
}

// BenchmarkAblationRescanPolicy compares organic vs. daily-snapshot
// hazard observation (the §7.1.1 discrepancy with prior work).
func BenchmarkAblationRescanPolicy(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.AblationRescanPolicy(1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HazardsPer10kTrajDaily, "daily-hazards-10k")
		b.ReportMetric(res.HazardsPer10kTrajOrganic, "organic-hazards-10k")
	}
}

// BenchmarkAblationUpdateCoupling sweeps the §5.5 coupling knob.
func BenchmarkAblationUpdateCoupling(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.AblationUpdateCoupling(800)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].CoincidentShare*100, "coupling0-pct")
	}
}

// BenchmarkAblationMeasurementWindow recomputes Δ under growing
// windows (§8.1).
func BenchmarkAblationMeasurementWindow(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.AblationMeasurementWindow()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].GrewFromPrev*100, "grew-30to90-pct")
	}
}

// --- micro-benchmarks of the pipeline hot paths -----------------------

// BenchmarkScanSample measures per-sample history generation — the
// cost that bounds every large experiment.
func BenchmarkScanSample(b *testing.B) {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed: 1, NumSamples: 4096, MultiOnly: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := sim.ScanSample(samples[i%len(samples)])
		if len(h.Reports) == 0 {
			b.Fatal("empty history")
		}
	}
}

// BenchmarkServiceUpload measures the stateful service path.
func BenchmarkServiceUpload(b *testing.B) {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	svc, clock := sim.NewService()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Second)
		_, err := svc.Upload(vtdynamics.UploadRequest{
			SHA256:        shaForBench(i),
			FileType:      vtdynamics.FileTypeWin32EXE,
			Malicious:     true,
			Detectability: 0.8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func shaForBench(i int) string {
	const hex = "0123456789abcdef"
	buf := make([]byte, 16)
	for j := range buf {
		buf[j] = hex[(i>>(j%8))&0xf]
	}
	return "bench" + string(buf)
}
