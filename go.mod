module vtdynamics

go 1.22
