package vtdynamics_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"vtdynamics"
	"vtdynamics/internal/core"
	"vtdynamics/internal/engine"
	"vtdynamics/internal/feed"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtclient"
	"vtdynamics/internal/vtsim"
)

// TestEndToEndHTTPPipeline replays the paper's entire data path over
// real HTTP: a workload drives the simulated service; the collector
// polls the feed endpoint through the typed client (with a premium
// key, since the public tier has no feed access); envelopes land in
// the compressed store; and the analyses run on what was stored. The
// store's view must agree byte-for-byte (per scan) with the service's
// own history.
func TestEndToEndHTTPPipeline(t *testing.T) {
	// --- service side ---------------------------------------------------
	set, err := engine.NewSet(engine.DefaultRoster(), 77,
		simclock.CollectionStart, simclock.CollectionEnd)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSim(simclock.CollectionStart)
	svc := vtsim.NewService(set, clock)
	srv := httptest.NewServer(vtapi.NewServer(svc, nil, vtapi.WithAuth(clock,
		map[string]vtapi.Tier{"premium": vtapi.PremiumTier})))
	defer srv.Close()

	// Drive two months of workload.
	end := simclock.CollectionStart.AddDate(0, 2, 0)
	samples, err := sampleset.Generate(sampleset.Config{
		Seed:       77,
		NumSamples: 400,
		Start:      simclock.CollectionStart,
		End:        end,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vtsim.RunWorkload(svc, clock, samples); err != nil {
		t.Fatal(err)
	}

	// --- collection side over HTTP ---------------------------------------
	client := vtclient.New(srv.URL, vtclient.WithAPIKey("premium"))
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, from, to time.Time) ([]report.Envelope, error) {
			return client.FeedBetween(ctx, from, to)
		}),
		feed.SinkFunc(st.Put),
	)
	stats, err := collector.RunHourly(context.Background(), simclock.CollectionStart, end)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// No loss, no duplication.
	if stats.Envelopes != svc.NumReports() {
		t.Fatalf("collected %d envelopes, service generated %d",
			stats.Envelopes, svc.NumReports())
	}
	if got := st.TotalStats().Reports; got != svc.NumReports() {
		t.Fatalf("stored %d reports, service generated %d", got, svc.NumReports())
	}
	if st.NumSamples() != svc.NumSamples() {
		t.Fatalf("stored %d samples, service has %d", st.NumSamples(), svc.NumSamples())
	}

	// --- store agrees with the service per sample -------------------------
	checked := 0
	for _, s := range samples {
		if len(s.ScanTimes) < 2 {
			continue
		}
		fromSvc, err := svc.History(s.SHA256)
		if err != nil {
			t.Fatal(err)
		}
		fromStore, err := st.Get(s.SHA256)
		if err != nil {
			t.Fatal(err)
		}
		if len(fromSvc.Reports) != len(fromStore.Reports) {
			t.Fatalf("%s: service %d reports, store %d",
				s.SHA256, len(fromSvc.Reports), len(fromStore.Reports))
		}
		for i := range fromSvc.Reports {
			a, b := fromSvc.Reports[i], fromStore.Reports[i]
			if a.AVRank != b.AVRank || !a.AnalysisDate.Equal(b.AnalysisDate) ||
				a.EnginesTotal != b.EnginesTotal {
				t.Fatalf("%s scan %d differs: svc(%d@%v) store(%d@%v)",
					s.SHA256, i, a.AVRank, a.AnalysisDate, b.AVRank, b.AnalysisDate)
			}
			for _, er := range a.Results {
				if b.VerdictOf(er.Engine) != er.Verdict {
					t.Fatalf("%s scan %d engine %s verdict differs", s.SHA256, i, er.Engine)
				}
			}
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no multi-scan samples verified")
	}

	// --- analysis runs on the stored data ---------------------------------
	var stable, dynamic int
	flips := core.NewFlipMatrix()
	for _, s := range samples {
		h, err := st.Get(s.SHA256)
		if err != nil {
			t.Fatal(err)
		}
		series := core.FromHistory(h)
		switch series.Classify() {
		case core.Stable:
			stable++
		case core.Dynamic:
			dynamic++
		}
		flips.AddHistory(h)
	}
	if stable == 0 || dynamic == 0 {
		t.Fatalf("degenerate classes from stored data: stable=%d dynamic=%d", stable, dynamic)
	}
	if flips.Total().Opportunities == 0 {
		t.Fatal("no flip opportunities from stored data")
	}
}

// TestScanSampleMatchesServicePath verifies the two generation paths
// — the stateful service and the pure ScanSample function — produce
// identical verdicts for the same sample at the same instants.
func TestScanSampleMatchesServicePath(t *testing.T) {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed: 31, NumSamples: 40, MultiOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, s := range samples {
		if checked == 10 {
			break
		}
		// Only fresh samples are path-equivalent: for an old sample
		// the pure path knows the true pre-window FirstSeen while the
		// service can only date it from its first in-window upload.
		if !s.Fresh {
			continue
		}
		checked++
		// A fresh service per sample: the virtual clock is monotonic,
		// so interleaving samples would clamp earlier scan times.
		svc, clock := sim.NewService()
		pure := sim.ScanSample(s)
		// Drive the service to the same instants.
		for i, at := range s.ScanTimes {
			clock.Set(at)
			if i == 0 {
				if _, err := svc.Upload(vtdynamics.UploadRequest{
					SHA256:        s.SHA256,
					FileType:      s.FileType,
					Size:          s.Size,
					Malicious:     s.Malicious,
					Detectability: s.Detectability,
				}); err != nil {
					t.Fatal(err)
				}
			} else if _, err := svc.Rescan(s.SHA256); err != nil {
				t.Fatal(err)
			}
		}
		served, err := svc.History(s.SHA256)
		if err != nil {
			t.Fatal(err)
		}
		if len(served.Reports) != len(pure.Reports) {
			t.Fatalf("%s: lengths differ", s.SHA256)
		}
		for i := range pure.Reports {
			if pure.Reports[i].AVRank != served.Reports[i].AVRank {
				t.Fatalf("%s scan %d: pure AVRank %d, service %d",
					s.SHA256, i, pure.Reports[i].AVRank, served.Reports[i].AVRank)
			}
		}
	}
}
