// Package vtdynamics is a library for studying the label dynamics of
// online anti-malware scanning services, reproducing "Re-measuring
// the Label Dynamics of Online Anti-Malware Engines from Millions of
// Samples" (IMC 2023).
//
// It bundles three layers behind one import:
//
//   - A simulated VirusTotal-style service: a 70+ engine roster with
//     latency, signature-update, activity, and correlation dynamics;
//     a workload generator calibrated to the paper's dataset shape;
//     upload/rescan/report API semantics (Table 1); a per-minute
//     premium feed; and a compressed, monthly-partitioned report
//     store.
//
//   - The label-dynamics analysis core: stable/dynamic
//     classification, δ/Δ metrics, white/black/gray threshold
//     categorization, AV-Rank and label stabilization, per-engine
//     flip and hazard-flip analysis, and engine-correlation groups.
//
//   - The experiment harness regenerating every table and figure of
//     the paper's evaluation.
//
// Quick start:
//
//	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 1})
//	svc, clock := sim.NewService()
//	env, err := svc.Upload(vtdynamics.UploadRequest{
//		SHA256: "...", FileType: vtdynamics.FileTypeWin32EXE,
//		Malicious: true, Detectability: 0.9,
//	})
//	clock.Advance(24 * time.Hour)
//	env, err = svc.Rescan("...")
//
// See examples/ for runnable programs and DESIGN.md for the paper
// mapping.
package vtdynamics

import (
	"time"

	"vtdynamics/internal/core"
	"vtdynamics/internal/engine"
	"vtdynamics/internal/experiments"
	"vtdynamics/internal/labeling"
	"vtdynamics/internal/predict"
	"vtdynamics/internal/report"
	"vtdynamics/internal/sampleset"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/stats"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtsim"
)

// Re-exported data model types.
type (
	// ScanReport is one analysis of one sample.
	ScanReport = report.ScanReport
	// EngineResult is one engine's entry in a scan report.
	EngineResult = report.EngineResult
	// SampleMeta is the per-sample metadata with the Table 1 fields.
	SampleMeta = report.SampleMeta
	// History is a sample's scan reports in time order.
	History = report.History
	// Envelope pairs metadata with a scan for wire transport.
	Envelope = report.Envelope
	// Verdict is an engine's per-scan decision.
	Verdict = report.Verdict
	// UploadRequest describes a file submitted to the service.
	UploadRequest = vtsim.UploadRequest
	// Service is the simulated VirusTotal backend.
	Service = vtsim.Service
	// Sample is one generated workload file with its scan schedule.
	Sample = sampleset.Sample
	// Clock abstracts time for the service.
	Clock = simclock.Clock
	// SimClock is the deterministic virtual clock.
	SimClock = simclock.SimClock
	// Store is the embedded compressed report store.
	Store = store.Store
)

// Verdict values (the paper's R-matrix encoding).
const (
	VerdictMalicious  = report.Malicious
	VerdictBenign     = report.Benign
	VerdictUndetected = report.Undetected
)

// Common file-type labels (the paper's top types).
const (
	FileTypeWin32EXE = "Win32 EXE"
	FileTypeWin32DLL = "Win32 DLL"
	FileTypeWin64EXE = "Win64 EXE"
	FileTypeWin64DLL = "Win64 DLL"
	FileTypeTXT      = "TXT"
	FileTypeHTML     = "HTML"
	FileTypeZIP      = "ZIP"
	FileTypePDF      = "PDF"
	FileTypeDEX      = "DEX"
	FileTypeELF      = "ELF executable"
)

// Re-exported analysis types.
type (
	// RankSeries is a sample's AV-Rank trajectory.
	RankSeries = core.RankSeries
	// Category is the white/black/gray class under a threshold.
	Category = core.Category
	// CategoryCounts tallies a population under one threshold.
	CategoryCounts = core.CategoryCounts
	// StabilizationResult describes when a series stabilized.
	StabilizationResult = core.StabilizationResult
	// FlipCounts aggregates an engine's flip behaviour.
	FlipCounts = core.FlipCounts
	// FlipMatrix accumulates flips per (engine, file type).
	FlipMatrix = core.FlipMatrix
	// VerdictMatrix is the scans × engines decision matrix of §7.2.
	VerdictMatrix = core.VerdictMatrix
	// PairCorrelation is one engine pair's Spearman correlation.
	PairCorrelation = core.PairCorrelation
	// EngineSeries is one engine's trajectory over one sample.
	EngineSeries = core.EngineSeries
	// Summary is the one-stop per-sample dynamics digest.
	Summary = core.Summary
	// SpearmanResult carries ρ, p, and n.
	SpearmanResult = stats.SpearmanResult
	// BoxplotStats is the five-number summary used by the figures.
	BoxplotStats = stats.BoxplotStats
)

// Category values.
const (
	CategoryWhite = core.White
	CategoryBlack = core.Black
	CategoryGray  = core.Gray
)

// Analysis entry points (see internal/core for full documentation).
var (
	// FromHistory extracts a sample's rank series.
	FromHistory = core.FromHistory
	// CategorySweep classifies a population under thresholds (Fig. 8).
	CategorySweep = core.CategorySweep
	// CountFlips tallies an engine's flips over a sample (§7.1).
	CountFlips = core.CountFlips
	// ExtractEngineSeries pulls one engine's trajectory from a history.
	ExtractEngineSeries = core.ExtractEngineSeries
	// NewFlipMatrix creates a flip accumulator (Fig. 10).
	NewFlipMatrix = core.NewFlipMatrix
	// NewVerdictMatrix creates a correlation matrix (§7.2).
	NewVerdictMatrix = core.NewVerdictMatrix
	// StrongGroups extracts correlated engine groups (Tables 4–8).
	StrongGroups = core.StrongGroups
	// Summarize digests one history under a labeling threshold.
	Summarize = core.Summarize
	// Spearman computes a tie-corrected rank correlation.
	Spearman = stats.Spearman
	// OpenStore opens the embedded compressed report store.
	OpenStore = store.Open
)

// Labeling strategies (§3.1).
type (
	// Aggregator collapses one scan into a binary label.
	Aggregator = labeling.Aggregator
	// Threshold labels malicious iff AV-Rank >= T.
	Threshold = labeling.Threshold
	// Percentage labels malicious iff AV-Rank >= fraction of engines.
	Percentage = labeling.Percentage
	// TrustedSubset counts votes from chosen engines only.
	TrustedSubset = labeling.TrustedSubset
)

// Labeling constructors.
var (
	NewThreshold     = labeling.NewThreshold
	NewPercentage    = labeling.NewPercentage
	NewTrustedSubset = labeling.NewTrustedSubset
	LabelHistory     = labeling.LabelHistory
)

// Learned label aggregation (§3.1's ML line — see internal/predict).
type (
	// Featurizer turns scan reports into engine verdict vectors.
	Featurizer = predict.Featurizer
	// PredictExample is one (features, label) training observation.
	PredictExample = predict.Example
	// PredictModel is a trained logistic-regression aggregator.
	PredictModel = predict.Model
	// PredictConfig parameterizes training.
	PredictConfig = predict.Config
	// PredictMetrics summarizes binary-classification quality.
	PredictMetrics = predict.Metrics
)

// Prediction entry points.
var (
	// NewFeaturizer fixes the engine feature order.
	NewFeaturizer = predict.NewFeaturizer
	// TrainPredictor fits a logistic-regression aggregator.
	TrainPredictor = predict.Train
	// PredictThresholdBaseline scores the unweighted threshold rule
	// on the same feature vectors.
	PredictThresholdBaseline = predict.ThresholdBaseline
)

// Experiments harness.
type (
	// ExperimentConfig sizes the experiment suite.
	ExperimentConfig = experiments.Config
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
)

// NewExperimentRunner builds the experiment harness.
var NewExperimentRunner = experiments.NewRunner

// Collection window of the paper (May 2021 – June 2022).
var (
	CollectionStart = simclock.CollectionStart
	CollectionEnd   = simclock.CollectionEnd
)

// SimConfig parameterizes a Simulation.
type SimConfig struct {
	// Seed drives all randomness; equal seeds reproduce everything.
	Seed int64
	// Start and End bound the engine-update schedules and default
	// workload window; zero values select the paper's 14 months.
	Start, End time.Time
	// Roster overrides the default 70+ engine roster when non-nil.
	Roster []EngineSpec
}

// EngineSpec is the behavioural parameterization of one engine.
type EngineSpec = engine.Spec

// DefaultRoster returns the calibrated 70+ engine roster.
func DefaultRoster() []EngineSpec { return engine.DefaultRoster() }

// Simulation owns an instantiated engine roster and provides the
// service, scanning, and workload entry points.
type Simulation struct {
	cfg SimConfig
	set *engine.Set
}

// NewSimulation instantiates the roster for the window.
func NewSimulation(cfg SimConfig) (*Simulation, error) {
	if cfg.Start.IsZero() {
		cfg.Start = simclock.CollectionStart
	}
	if cfg.End.IsZero() {
		cfg.End = simclock.CollectionEnd
	}
	roster := cfg.Roster
	if roster == nil {
		roster = engine.DefaultRoster()
	}
	set, err := engine.NewSet(roster, cfg.Seed, cfg.Start, cfg.End)
	if err != nil {
		return nil, err
	}
	return &Simulation{cfg: cfg, set: set}, nil
}

// EngineNames returns the roster's engine names in order.
func (s *Simulation) EngineNames() []string { return s.set.Names() }

// NewService creates a stateful service over a fresh virtual clock
// starting at the window start.
func (s *Simulation) NewService() (*Service, *SimClock) {
	clock := simclock.NewSim(s.cfg.Start)
	return vtsim.NewService(s.set, clock), clock
}

// NewServiceWithClock creates a service over a caller-provided clock.
func (s *Simulation) NewServiceWithClock(clock Clock) *Service {
	return vtsim.NewService(s.set, clock)
}

// ScanSample produces one sample's complete scan history as a pure
// function — the entry point for large-scale analyses. Safe to call
// concurrently.
func (s *Simulation) ScanSample(sample *Sample) *History {
	return vtsim.ScanSample(s.set, sample)
}

// RunWorkload drives a service through a population in global time
// order.
func (s *Simulation) RunWorkload(svc *Service, clock *SimClock, samples []*Sample) error {
	return vtsim.RunWorkload(svc, clock, samples)
}

// WorkloadConfig mirrors the workload generator's configuration.
type WorkloadConfig = sampleset.Config

// GenerateWorkload produces a calibrated synthetic submission
// population.
func GenerateWorkload(cfg WorkloadConfig) ([]*Sample, error) {
	return sampleset.Generate(cfg)
}
