package vtdynamics_test

import (
	"fmt"
	"log"
	"time"

	"vtdynamics"
)

// ExampleRankSeries_Categorize shows the §5.4 white/black/gray
// classification: a sample whose AV-Rank history straddles the
// threshold would receive different labels depending on when it is
// scanned.
func ExampleRankSeries_Categorize() {
	t0 := vtdynamics.CollectionStart
	day := 24 * time.Hour
	series := vtdynamics.RankSeries{
		Times: []time.Time{t0, t0.Add(3 * day), t0.Add(9 * day)},
		Ranks: []int{2, 7, 12},
	}
	fmt.Println(series.Categorize(1))  // every scan >= 1
	fmt.Println(series.Categorize(5))  // crosses 5 mid-history
	fmt.Println(series.Categorize(20)) // never reaches 20
	// Output:
	// black
	// gray
	// white
}

// ExampleRankSeries_StabilizeWithin shows the §6.1 stabilization
// criterion: the series settles once its suffix stays within the
// fluctuation range.
func ExampleRankSeries_StabilizeWithin() {
	t0 := vtdynamics.CollectionStart
	day := 24 * time.Hour
	series := vtdynamics.RankSeries{
		Times: []time.Time{t0, t0.Add(2 * day), t0.Add(5 * day), t0.Add(9 * day)},
		Ranks: []int{0, 9, 14, 14},
	}
	strict := series.StabilizeWithin(0)
	fmt.Println(strict.Stable, strict.Index, int(strict.TimeToStability.Hours()/24))
	loose := series.StabilizeWithin(5)
	fmt.Println(loose.Stable, loose.Index)
	// Output:
	// true 2 5
	// true 1
}

// ExampleCategorySweep reproduces the Figure 8 methodology on a toy
// population.
func ExampleCategorySweep() {
	t0 := vtdynamics.CollectionStart
	mk := func(ranks ...int) vtdynamics.RankSeries {
		times := make([]time.Time, len(ranks))
		for i := range ranks {
			times[i] = t0.Add(time.Duration(i) * 24 * time.Hour)
		}
		return vtdynamics.RankSeries{Times: times, Ranks: ranks}
	}
	population := []vtdynamics.RankSeries{
		mk(0, 1),   // touches 1: gray at t=1
		mk(4, 9),   // gray for t in 5..9
		mk(20, 25), // black until t=20
	}
	for _, counts := range vtdynamics.CategorySweep(population, []int{1, 7, 30}) {
		fmt.Printf("t=%d gray=%.0f%%\n", counts.Threshold, counts.GrayFraction()*100)
	}
	// Output:
	// t=1 gray=33%
	// t=7 gray=33%
	// t=30 gray=0%
}

// ExampleNewSimulation runs the end-to-end loop: upload, rescan,
// analyze. (Unverified output: the exact AV-Ranks depend on the
// calibrated engine roster.)
func ExampleNewSimulation() {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	svc, clock := sim.NewService()
	env, err := svc.Upload(vtdynamics.UploadRequest{
		SHA256:        "example-sample",
		FileType:      vtdynamics.FileTypeWin32EXE,
		Malicious:     true,
		Detectability: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first scan AV-Rank: %d of %d engines\n",
		env.Scan.AVRank, env.Scan.EnginesTotal)

	clock.Advance(30 * 24 * time.Hour)
	env, err = svc.Rescan("example-sample")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a month later: %d\n", env.Scan.AVRank)
}
