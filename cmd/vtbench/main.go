// Command vtbench runs the standardized end-to-end benchmark
// scenarios (internal/benchkit) and gates regressions between runs.
//
// Usage:
//
//	vtbench run [-scenario all] [-profile smoke] [-seed 1] [-out .]
//	            [-handicap name=factor,...] [-cpuprofile f] [-memprofile f]
//	vtbench soak [-arrivals 100000] [-rate 2000] [-clients 1000] [-storms] ...
//	vtbench compare OLD NEW [-threshold 10]
//	vtbench list
//
// `run` executes each scenario (warmup + repetitions), prints a
// summary line, and writes BENCH_<scenario>.json records into -out.
// -cpuprofile and -memprofile write pprof profiles covering the whole
// run (CPU for the duration, heap at exit) — the CI perf-smoke job
// attaches them as artifacts so a regression can be diagnosed from
// the run that caught it.
// `soak` drives the open-loop sustained-load harness
// (internal/loadgen) against a live loopback stack: arrivals are
// scheduled on a fixed timeline regardless of response latency, so
// the recorded p50/p90/p99/p99.9 include every queueing delay a
// stalled server causes (no coordinated omission). -storms overlays a
// rescan storm, an engine-outage wave, and a feed-lag spike; -handicap
// multiplies every recorded latency to prove the soak gate trips.
// `compare` diffs two records or two directories of records and exits
// 1 when any scenario's median slowed beyond threshold% plus the
// noisier run's CV — the CI perf gate; records carrying tail columns
// (soak) are gated on p99 too. -handicap artificially
// inflates named scenarios' measured times; it exists to prove the
// gate trips (`-handicap ingest=2` against a clean baseline must
// fail).
//
// Exit codes: 0 ok, 1 regression detected, 2 usage or runtime error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"vtdynamics/internal/benchkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usageText = `usage:
  vtbench run [-scenario all] [-profile smoke] [-seed 1] [-out .] [-handicap name=factor,...] [-cpuprofile f] [-memprofile f]
  vtbench soak [-arrivals 100000] [-rate 2000] [-clients 1000] [-samples 20000]
               [-submitters 5000] [-zipf 1.1] [-storms] [-feedwindow 2s]
               [-feedlimit 200] [-seed 1] [-out .] [-handicap 1] [-histout f]
  vtbench compare OLD NEW [-threshold 10]
  vtbench list
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "soak":
		return cmdSoak(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "list":
		return cmdList(stdout)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(stdout, usageText)
		return 0
	default:
		fmt.Fprintf(stderr, "vtbench: unknown command %q\n%s", args[0], usageText)
		return 2
	}
}

// runOptions are the parsed `vtbench run` flags.
type runOptions struct {
	scenarios  []string
	profile    benchkit.Profile
	seed       int64
	out        string
	handicaps  map[string]float64
	cpuprofile string
	memprofile string
}

func parseRunFlags(args []string, stderr io.Writer) (*runOptions, error) {
	fs := flag.NewFlagSet("vtbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario   = fs.String("scenario", "all", "scenario to run: all or a comma-separated subset of "+strings.Join(benchkit.ScenarioNames(), ","))
		profile    = fs.String("profile", "smoke", "workload size: "+strings.Join(benchkit.ProfileNames(), " or "))
		seed       = fs.Int64("seed", 1, "campaign seed (records with different seeds never compare)")
		out        = fs.String("out", ".", "directory receiving BENCH_<scenario>.json")
		handicap   = fs.String("handicap", "", "inflate named scenarios' measured times, e.g. ingest=2 (gate self-test)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU pprof profile covering the whole run to this file")
		memprofile = fs.String("memprofile", "", "write a heap pprof profile at run exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	opts := &runOptions{seed: *seed, out: *out, handicaps: map[string]float64{},
		cpuprofile: *cpuprofile, memprofile: *memprofile}
	var err error
	if opts.profile, err = benchkit.ProfileByName(*profile); err != nil {
		return nil, err
	}
	if *scenario == "all" {
		opts.scenarios = benchkit.ScenarioNames()
	} else {
		for _, name := range strings.Split(*scenario, ",") {
			if _, err := benchkit.ScenarioByName(name); err != nil {
				return nil, err
			}
			opts.scenarios = append(opts.scenarios, name)
		}
	}
	for _, spec := range strings.Split(*handicap, ",") {
		if spec == "" {
			continue
		}
		name, factorStr, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -handicap %q: want name=factor", spec)
		}
		if _, err := benchkit.ScenarioByName(name); err != nil {
			return nil, err
		}
		factor, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || factor < 1 {
			return nil, fmt.Errorf("bad -handicap factor %q: want a number >= 1", factorStr)
		}
		opts.handicaps[name] = factor
	}
	return opts, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	opts, err := parseRunFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	if err := os.MkdirAll(opts.out, 0o755); err != nil {
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	if opts.cpuprofile != "" {
		f, err := os.Create(opts.cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if opts.memprofile != "" {
		defer func() {
			f, err := os.Create(opts.memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "vtbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "vtbench:", err)
			}
		}()
	}
	for _, name := range opts.scenarios {
		sc, err := benchkit.ScenarioByName(name)
		if err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		res, err := benchkit.Run(sc, benchkit.RunConfig{
			Profile:  opts.profile,
			Seed:     opts.seed,
			Handicap: opts.handicaps[name],
		})
		if err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		path, err := res.WriteFile(opts.out)
		if err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		fmt.Fprintf(stdout, "%-10s median %10.2fms  p90 %10.2fms  cv %5.1f%%  %12.0f ops/s  %8.0f allocs/op  %9.0f B/op  -> %s\n",
			res.Scenario, res.Stats.MedianNS/1e6, res.Stats.P90NS/1e6,
			res.Stats.CV*100, res.Stats.OpsPerSec,
			res.Stats.AllocsPerOp, res.Stats.BytesPerOp, path)
	}
	return 0
}

// compareOptions are the parsed `vtbench compare` flags.
type compareOptions struct {
	old, new  string
	threshold float64
}

func parseCompareFlags(args []string, stderr io.Writer) (*compareOptions, error) {
	fs := flag.NewFlagSet("vtbench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "allowed median slowdown in percent (widened by the noisier run's CV)")
	// Flags may interleave with the two positional paths
	// (`compare old new -threshold 20` and `compare -threshold 20
	// old new` both work), so re-parse after each positional.
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	if len(pos) != 2 {
		return nil, fmt.Errorf("compare wants exactly OLD and NEW, got %d arguments", len(pos))
	}
	if *threshold < 0 {
		return nil, fmt.Errorf("bad -threshold %v: want >= 0", *threshold)
	}
	return &compareOptions{old: pos[0], new: pos[1], threshold: *threshold}, nil
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	opts, err := parseCompareFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	comps, err := compare(opts)
	if err != nil {
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	regressed := false
	for _, c := range comps {
		fmt.Fprintln(stdout, c)
		regressed = regressed || c.Regressed || c.P99Regressed
	}
	if regressed {
		fmt.Fprintln(stderr, "vtbench: performance regression detected")
		return 1
	}
	return 0
}

// compare diffs two records or two directories of records.
func compare(opts *compareOptions) ([]benchkit.Comparison, error) {
	oldInfo, err := os.Stat(opts.old)
	if err != nil {
		return nil, err
	}
	if oldInfo.IsDir() {
		return benchkit.CompareDirs(opts.old, opts.new, opts.threshold)
	}
	oldRes, err := benchkit.ReadFile(opts.old)
	if err != nil {
		return nil, err
	}
	newRes, err := benchkit.ReadFile(opts.new)
	if err != nil {
		return nil, err
	}
	c, err := benchkit.Compare(oldRes, newRes, opts.threshold)
	if err != nil {
		return nil, err
	}
	return []benchkit.Comparison{c}, nil
}

func cmdList(stdout io.Writer) int {
	fmt.Fprintln(stdout, "scenarios:")
	for _, sc := range benchkit.Scenarios {
		fmt.Fprintf(stdout, "  %-10s %s\n", sc.Name, sc.Desc)
	}
	fmt.Fprintln(stdout, "profiles:")
	for _, name := range benchkit.ProfileNames() {
		p := benchkit.Profiles[name]
		fmt.Fprintf(stdout, "  %-10s samples %d, reps %d (+%d warmup), %d cold gets, %d hot gets, %d api requests\n",
			name, p.Samples, p.Reps, p.Warmup, p.Gets, p.HotGets, p.APIRequests)
	}
	return 0
}
