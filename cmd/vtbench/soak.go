package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vtdynamics/internal/benchkit"
	"vtdynamics/internal/loadgen"
	"vtdynamics/internal/obs"
)

// soakOptions are the parsed `vtbench soak` flags.
type soakOptions struct {
	soak    benchkit.SoakOptions
	out     string
	histout string
}

func parseSoakFlags(args []string, stderr io.Writer) (*soakOptions, error) {
	fs := flag.NewFlagSet("vtbench soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		samples    = fs.Int("samples", 20000, "sample population size")
		arrivals   = fs.Int("arrivals", 100000, "total scheduled requests (1e5 smoke; 1e6-1e7 for long soaks)")
		clients    = fs.Int("clients", 1000, "concurrent client lanes")
		submitters = fs.Int("submitters", 5000, "distinct submitter keys in the Zipf mix")
		rate       = fs.Float64("rate", 2000, "base arrival rate in requests/second (open loop: offered regardless of latency)")
		zipf       = fs.Float64("zipf", 1.1, "submitter-mix Zipf exponent")
		seed       = fs.Int64("seed", 1, "workload seed (records with different seeds never compare)")
		storms     = fs.Bool("storms", false, "enable the hostile phases: rescan storm, engine-outage wave, feed-lag spike")
		feedwindow = fs.Duration("feedwindow", 2*time.Second, "steady-state feed query span")
		feedlimit  = fs.Int("feedlimit", 200, "page cap per feed response in envelopes (paged catch-up reads)")
		out        = fs.String("out", ".", "directory receiving BENCH_soak.json")
		handicap   = fs.Float64("handicap", 1, "multiply every recorded latency (gate self-test; >= 1)")
		histout    = fs.String("histout", "", "write the per-op latency histograms as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	switch {
	case *arrivals < 1:
		return nil, fmt.Errorf("bad -arrivals %d: want >= 1", *arrivals)
	case *rate <= 0:
		return nil, fmt.Errorf("bad -rate %v: want > 0", *rate)
	case *handicap < 1:
		return nil, fmt.Errorf("bad -handicap %v: want >= 1", *handicap)
	case *feedlimit < 1:
		return nil, fmt.Errorf("bad -feedlimit %d: want >= 1", *feedlimit)
	}
	return &soakOptions{
		soak: benchkit.SoakOptions{
			Samples:    *samples,
			Arrivals:   *arrivals,
			Clients:    *clients,
			Submitters: *submitters,
			Rate:       *rate,
			Zipf:       *zipf,
			Seed:       *seed,
			Storms:     *storms,
			FeedWindow: *feedwindow,
			FeedLimit:  *feedlimit,
			Handicap:   *handicap,
		},
		out:     *out,
		histout: *histout,
	}, nil
}

// soakHistArtifact is the -histout JSON layout: the raw bucketed
// latency distributions the quantiles were extracted from, so a CI
// artifact carries the full shape, not four summary numbers.
type soakHistArtifact struct {
	Overall obs.HistSnapshot            `json:"overall"`
	PerOp   map[string]obs.HistSnapshot `json:"per_op"`
	// SchedLagMax is the generator's worst lateness in seconds — the
	// honesty bound on the schedule itself.
	SchedLagMax float64 `json:"sched_lag_max"`
}

func cmdSoak(args []string, stdout, stderr io.Writer) int {
	opts, err := parseSoakFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	if err := os.MkdirAll(opts.out, 0o755); err != nil {
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	if d, err := loadgen.Duration(soakSchedule(opts.soak)); err == nil {
		fmt.Fprintf(stdout, "soak: %d arrivals at %.0f/s base rate over %d lanes (nominal %s)\n",
			opts.soak.Arrivals, opts.soak.Rate, opts.soak.Clients, d.Round(time.Second))
	}
	res, rep, err := benchkit.RunSoak(context.Background(), opts.soak)
	if err != nil {
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	path, err := res.WriteFile(opts.out)
	if err != nil {
		fmt.Fprintln(stderr, "vtbench:", err)
		return 2
	}
	fmt.Fprintf(stdout, "soak: achieved %.0f req/s, %d not-found, sched-lag max %.1fms\n",
		rep.AchievedRate, rep.NotFound, rep.MaxSchedLag*1e3)
	fmt.Fprintf(stdout, "%-8s %10s %10s %10s %10s %10s %8s\n",
		"op", "p50", "p90", "p99", "p99.9", "max", "count")
	ms := func(s float64) string { return fmt.Sprintf("%.2fms", s*1e3) }
	for _, op := range append(loadgen.OpNames(), "all") {
		st := rep.Overall
		if op != "all" {
			st = rep.PerOp[op]
		}
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(stdout, "%-8s %10s %10s %10s %10s %10s %8d\n",
			op, ms(st.P50), ms(st.P90), ms(st.P99), ms(st.P999), ms(st.Max), st.Count)
	}
	fmt.Fprintf(stdout, "-> %s\n", path)
	if opts.histout != "" {
		b, err := json.MarshalIndent(soakHistArtifact{
			Overall:     rep.OverallHist,
			PerOp:       rep.PerOpHist,
			SchedLagMax: rep.MaxSchedLag,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		if err := os.WriteFile(opts.histout, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "vtbench:", err)
			return 2
		}
		fmt.Fprintf(stdout, "-> %s\n", opts.histout)
	}
	return 0
}

// soakSchedule mirrors benchkit's loadgen config closely enough to
// preview the nominal duration (phases shift it only when storms are
// on, and only by the storm's compression).
func soakSchedule(o benchkit.SoakOptions) loadgen.Config {
	cfg := loadgen.Config{
		Rate:         o.Rate,
		Clients:      o.Clients,
		Arrivals:     o.Arrivals,
		Seed:         o.Seed,
		Submitters:   o.Submitters,
		ZipfExponent: o.Zipf,
		Samples:      o.Samples,
		FeedWindow:   o.FeedWindow,
	}
	if o.Storms {
		cfg.Phases = []loadgen.Phase{{Name: "rescan-storm", FromFrac: 0.40, ToFrac: 0.55, RateMul: 3}}
	}
	return cfg
}
