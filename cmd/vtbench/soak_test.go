package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSoakFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(t *testing.T, o *soakOptions)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *soakOptions) {
				if o.soak.Arrivals != 100000 || o.soak.Rate != 2000 || o.soak.Clients != 1000 {
					t.Errorf("defaults = %+v", o.soak)
				}
				if o.soak.Storms || o.soak.Handicap != 1 || o.out != "." || o.histout != "" {
					t.Errorf("defaults = %+v", o)
				}
			},
		},
		{
			name: "explicit knobs",
			args: []string{"-arrivals", "500", "-rate", "250", "-clients", "32",
				"-samples", "100", "-submitters", "50", "-zipf", "1.3", "-seed", "7",
				"-storms", "-feedwindow", "5s", "-feedlimit", "64", "-out", "/tmp/x",
				"-handicap", "20", "-histout", "hist.json"},
			check: func(t *testing.T, o *soakOptions) {
				s := o.soak
				if s.Arrivals != 500 || s.Rate != 250 || s.Clients != 32 || s.Samples != 100 ||
					s.Submitters != 50 || s.Zipf != 1.3 || s.Seed != 7 || !s.Storms ||
					s.FeedWindow != 5*time.Second || s.FeedLimit != 64 || s.Handicap != 20 {
					t.Errorf("parsed = %+v", s)
				}
				if o.out != "/tmp/x" || o.histout != "hist.json" {
					t.Errorf("outputs = %q/%q", o.out, o.histout)
				}
			},
		},
		{name: "handicap below one", args: []string{"-handicap", "0.5"}, wantErr: true},
		{name: "zero feed limit", args: []string{"-feedlimit", "0"}, wantErr: true},
		{name: "zero rate", args: []string{"-rate", "0"}, wantErr: true},
		{name: "zero arrivals", args: []string{"-arrivals", "0"}, wantErr: true},
		{name: "positional junk", args: []string{"extra"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBuf bytes.Buffer
			o, err := parseSoakFlags(tc.args, &errBuf)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse rejected %v: %v", tc.args, err)
			}
			tc.check(t, o)
		})
	}
}

// TestSoakCompareEndToEnd is the CLI-level gate self-test: a tiny
// clean soak records a baseline, a handicapped rerun of the same
// workload must exit 1 from compare, and the clean rerun compares ok.
func TestSoakCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-scale end-to-end soak")
	}
	baseDir := t.TempDir()
	slowDir := t.TempDir()
	histPath := filepath.Join(baseDir, "hist.json")
	common := []string{"soak", "-arrivals", "400", "-rate", "1200", "-clients", "48",
		"-samples", "200", "-submitters", "100", "-seed", "3"}

	var out, errOut bytes.Buffer
	args := append(append([]string{}, common...), "-out", baseDir, "-histout", histPath)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("clean soak exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "p99.9") {
		t.Fatalf("soak output has no tail table:\n%s", out.String())
	}
	basePath := filepath.Join(baseDir, "BENCH_soak.json")
	if _, err := os.Stat(basePath); err != nil {
		t.Fatalf("no record written: %v", err)
	}
	// The histogram artifact must be real JSON with per-op series.
	var hist soakHistArtifact
	b, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatalf("histout is not JSON: %v", err)
	}
	if hist.Overall.Count == 0 || len(hist.PerOp) == 0 {
		t.Fatalf("histout is empty: %+v", hist)
	}

	out.Reset()
	errOut.Reset()
	args = append(append([]string{}, common...), "-out", slowDir, "-handicap", "25")
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("handicapped soak exited %d: %s", code, errOut.String())
	}

	// Handicap vs clean baseline: the gate must trip.
	out.Reset()
	errOut.Reset()
	code := run([]string{"compare", basePath, filepath.Join(slowDir, "BENCH_soak.json"),
		"-threshold", "400"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("compare vs 25x handicap exited %d, want 1\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("compare output hides the verdict:\n%s", out.String())
	}

	// Baseline against itself: clean exit.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"compare", basePath, basePath, "-threshold", "400"}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare exited %d: %s", code, errOut.String())
	}
}
