package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/benchkit"
)

func TestParseRunFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(t *testing.T, o *runOptions)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *runOptions) {
				if len(o.scenarios) != len(benchkit.Scenarios) {
					t.Errorf("default scenarios = %v", o.scenarios)
				}
				if o.profile.Name != "smoke" || o.seed != 1 || o.out != "." {
					t.Errorf("defaults = %+v", o)
				}
			},
		},
		{
			name: "explicit subset and handicap",
			args: []string{"-scenario", "ingest,scan", "-profile", "full", "-seed", "42", "-out", "/tmp/x", "-handicap", "ingest=2"},
			check: func(t *testing.T, o *runOptions) {
				if len(o.scenarios) != 2 || o.scenarios[0] != "ingest" || o.scenarios[1] != "scan" {
					t.Errorf("scenarios = %v", o.scenarios)
				}
				if o.profile.Name != "full" || o.seed != 42 || o.out != "/tmp/x" {
					t.Errorf("parsed = %+v", o)
				}
				if o.handicaps["ingest"] != 2 {
					t.Errorf("handicaps = %v", o.handicaps)
				}
			},
		},
		{
			name: "profile outputs",
			args: []string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"},
			check: func(t *testing.T, o *runOptions) {
				if o.cpuprofile != "cpu.out" || o.memprofile != "mem.out" {
					t.Errorf("profile paths = %q/%q", o.cpuprofile, o.memprofile)
				}
			},
		},
		{name: "unknown scenario", args: []string{"-scenario", "nope"}, wantErr: true},
		{name: "unknown profile", args: []string{"-profile", "nope"}, wantErr: true},
		{name: "bad handicap spec", args: []string{"-handicap", "ingest"}, wantErr: true},
		{name: "bad handicap factor", args: []string{"-handicap", "ingest=0.5"}, wantErr: true},
		{name: "handicap for unknown scenario", args: []string{"-handicap", "nope=2"}, wantErr: true},
		{name: "stray positional", args: []string{"extra"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			opts, err := parseRunFlags(c.args, &stderr)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, opts)
		})
	}
}

func TestParseCompareFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    compareOptions
	}{
		{
			name: "positionals then flag",
			args: []string{"old", "new", "-threshold", "25"},
			want: compareOptions{old: "old", new: "new", threshold: 25},
		},
		{
			name: "flag then positionals",
			args: []string{"-threshold", "25", "old", "new"},
			want: compareOptions{old: "old", new: "new", threshold: 25},
		},
		{
			name: "default threshold",
			args: []string{"old", "new"},
			want: compareOptions{old: "old", new: "new", threshold: 10},
		},
		{name: "missing new", args: []string{"old"}, wantErr: true},
		{name: "too many paths", args: []string{"a", "b", "c"}, wantErr: true},
		{name: "negative threshold", args: []string{"old", "new", "-threshold", "-1"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			opts, err := parseCompareFlags(c.args, &stderr)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestHelpAndUsageExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		code int
	}{
		{nil, 2},
		{[]string{"bogus"}, 2},
		{[]string{"-h"}, 0},
		{[]string{"help"}, 0},
		{[]string{"run", "-h"}, 0},
		{[]string{"compare", "-h"}, 0},
		{[]string{"run", "-bogus"}, 2},
		{[]string{"compare"}, 2},
		{[]string{"list"}, 0},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != c.code {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", c.args, code, c.code, stderr.String())
		}
	}
}

func TestListNamesEveryScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, name := range benchkit.ScenarioNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("list output missing scenario %q", name)
		}
	}
	for _, name := range benchkit.ProfileNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("list output missing profile %q", name)
		}
	}
}

// testProfile keeps the end-to-end CLI test fast; the real profiles
// are exercised by the CI perf-smoke job.
func installTestProfile(t *testing.T) {
	t.Helper()
	saved := benchkit.Profiles["smoke"]
	benchkit.Profiles["smoke"] = benchkit.Profile{
		Name:        "smoke",
		Samples:     100,
		Workers:     2,
		Reps:        2,
		Warmup:      0,
		Gets:        4,
		HotSet:      4,
		HotGets:     32,
		APIRequests: 4,
		Interval:    14 * 24 * time.Hour,
	}
	t.Cleanup(func() { benchkit.Profiles["smoke"] = saved })
}

// TestRunCompareEndToEnd drives the real binary surface: run all
// scenarios twice, compare (passes), then re-run ingest with a 2x
// handicap and watch compare exit 1 — the acceptance criterion for
// the regression gate.
func TestRunCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end CLI run")
	}
	installTestProfile(t)
	baseDir, newDir := t.TempDir(), t.TempDir()

	cpuOut := filepath.Join(baseDir, "cpu.pprof")
	memOut := filepath.Join(baseDir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-scenario", "all", "-out", baseDir,
		"-cpuprofile", cpuOut, "-memprofile", memOut}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exited %d: %s", code, stderr.String())
	}
	for _, p := range []string{cpuOut, memOut} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	for _, name := range benchkit.ScenarioNames() {
		path := filepath.Join(baseDir, benchkit.FileName(name))
		if _, err := benchkit.ReadFile(path); err != nil {
			t.Fatalf("baseline record invalid: %v", err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatal(err)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"run", "-scenario", "all", "-out", newDir}, &stdout, &stderr); code != 0 {
		t.Fatalf("second run exited %d: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	// Two honest runs at the same seed compare clean at a generous
	// threshold (single-machine noise stays far below 400%).
	if code := run([]string{"compare", baseDir, newDir, "-threshold", "400"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean compare exited %d: %s\n%s", code, stderr.String(), stdout.String())
	}

	// A handicapped ingest must trip the gate even at that threshold.
	slowDir := t.TempDir()
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"run", "-scenario", "ingest", "-out", slowDir, "-handicap", "ingest=16"}, &stdout, &stderr); code != 0 {
		t.Fatalf("handicapped run exited %d: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"compare",
		filepath.Join(baseDir, benchkit.FileName("ingest")),
		filepath.Join(slowDir, benchkit.FileName("ingest")),
		"-threshold", "400"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("handicapped compare exited %d, want 1: %s\n%s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Fatalf("compare output missing verdict: %s", stdout.String())
	}
}
