package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    options
	}{
		{
			name: "minimal",
			args: []string{"-sha", "abc"},
			want: options{dir: "./vtdata", sha: "abc", t: 5},
		},
		{
			name: "everything set",
			args: []string{"-store", "/tmp/s", "-sha", "abc", "-t", "10", "-timing"},
			want: options{dir: "/tmp/s", sha: "abc", t: 10, timing: true},
		},
		{
			name: "range mode, plain dates",
			args: []string{"-since", "2021-05-01", "-until", "2021-06-01"},
			want: options{dir: "./vtdata", t: 5,
				since: time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC).Unix(),
				until: time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC).Unix()},
		},
		{
			name: "range mode, RFC 3339 since",
			args: []string{"-since", "2021-05-01T12:30:00Z"},
			want: options{dir: "./vtdata", t: 5,
				since: time.Date(2021, 5, 1, 12, 30, 0, 0, time.UTC).Unix()},
		},
		{
			name: "ftype alone engages range mode",
			args: []string{"-ftype", "Win32 EXE,PDF"},
			want: options{dir: "./vtdata", t: 5, ftype: "Win32 EXE,PDF"},
		},
		{
			name: "range mode keeps optional sha",
			args: []string{"-until", "2021-06-01", "-sha", "abc"},
			want: options{dir: "./vtdata", sha: "abc", t: 5,
				until: time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC).Unix()},
		},
		{name: "missing sha", args: nil, wantErr: true},
		{name: "zero threshold", args: []string{"-sha", "abc", "-t", "0"}, wantErr: true},
		{name: "stray positional", args: []string{"-sha", "abc", "extra"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
		{name: "bad since", args: []string{"-since", "yesterday"}, wantErr: true},
		{name: "bad until", args: []string{"-until", "05/01/2021"}, wantErr: true},
		{name: "inverted window", args: []string{"-since", "2021-06-01", "-until", "2021-05-01"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// buildRangeStore writes a closed two-month store: 10 May EXE scans,
// 5 May PDF scans, 5 June EXE scans.
func buildRangeStore(t *testing.T, dir string) {
	t.Helper()
	s, err := store.Open(dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	put := func(sha, ft string, at time.Time) {
		t.Helper()
		env := report.Envelope{
			Meta: report.SampleMeta{
				SHA256:              sha,
				FileType:            ft,
				Size:                1024,
				FirstSubmissionDate: at,
				LastAnalysisDate:    at,
				LastSubmissionDate:  at,
				TimesSubmitted:      1,
			},
			Scan: report.ScanReport{
				SHA256:       sha,
				FileType:     ft,
				AnalysisDate: at,
				AVRank:       1,
				EnginesTotal: 1,
				Results: []report.EngineResult{
					{Engine: "Avast", Verdict: report.Malicious, Label: "Trojan.Gen", SignatureVersion: 1},
				},
			},
		}
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	may := time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)
	june := time.Date(2021, 6, 2, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("exe-may-%02d", i), "Win32 EXE", may.Add(time.Duration(i)*time.Hour))
	}
	for i := 0; i < 5; i++ {
		put(fmt.Sprintf("pdf-may-%02d", i), "PDF", may.Add(time.Duration(i)*time.Hour))
	}
	for i := 0; i < 5; i++ {
		put(fmt.Sprintf("exe-jun-%02d", i), "Win32 EXE", june.Add(time.Duration(i)*time.Hour))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunRangeMode drives run() end to end through the pushdown path.
func TestRunRangeMode(t *testing.T) {
	dir := t.TempDir()
	buildRangeStore(t, dir)

	cases := []struct {
		name string
		args []string
		want []string // substrings of stdout
	}{
		{
			name: "month window",
			args: []string{"-store", dir, "-since", "2021-05-01", "-until", "2021-05-31"},
			want: []string{"matched 15 scans", "Win32 EXE", "PDF", "blocks pruned"},
		},
		{
			name: "window and filetype",
			args: []string{"-store", dir, "-since", "2021-05-01", "-until", "2021-05-31", "-ftype", "PDF"},
			want: []string{"matched 5 scans", "PDF"},
		},
		{
			name: "filetype alone",
			args: []string{"-store", dir, "-ftype", "Win32 EXE"},
			want: []string{"matched 15 scans", "Win32 EXE"},
		},
		{
			name: "range mode with sha",
			args: []string{"-store", dir, "-since", "2021-05-01", "-sha", "pdf-may-00"},
			want: []string{"matched 1 scans", "PDF"},
		},
		{
			name: "empty window prunes everything",
			args: []string{"-store", dir, "-since", "2030-01-01"},
			want: []string{"matched 0 scans", "0 scanned", "0 KiB gunzipped"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
			}
			for _, want := range c.want {
				if !strings.Contains(stdout.String(), want) {
					t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
		})
	}
}
