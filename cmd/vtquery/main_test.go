package main

import (
	"errors"
	"flag"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    options
	}{
		{
			name: "minimal",
			args: []string{"-sha", "abc"},
			want: options{dir: "./vtdata", sha: "abc", t: 5},
		},
		{
			name: "everything set",
			args: []string{"-store", "/tmp/s", "-sha", "abc", "-t", "10", "-timing"},
			want: options{dir: "/tmp/s", sha: "abc", t: 10, timing: true},
		},
		{name: "missing sha", args: nil, wantErr: true},
		{name: "zero threshold", args: []string{"-sha", "abc", "-t", "0"}, wantErr: true},
		{name: "stray positional", args: []string{"-sha", "abc", "extra"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}
