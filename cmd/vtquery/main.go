// Command vtquery inspects a collected store: one sample's scan
// history and dynamics summary, or — in range mode — a pushdown
// aggregation over a time window and predicate set.
//
// Usage:
//
//	vtquery -store ./vtdata -sha <sha256> [-t 5] [-timing]
//	vtquery -store ./vtdata -since 2021-05-01 [-until 2021-06-01] [-ftype "Win32 EXE,PDF"] [-sha <sha256>]
//
// The first form prints the sample's AV-Rank trajectory,
// stable/dynamic class, Δ, stabilization, per-threshold category, and
// the engines that flipped on it. -timing additionally reports the
// cold and hot Get latency: the first lookup seeks only the gzip
// blocks holding the sample (or falls back to a full partition scan
// when the store predates the block-index sidecars), the second is
// served from the decoded-history LRU cache.
//
// Range mode engages when any of -since, -until, or -ftype is given.
// The query runs on the store's pushdown scan engine: sidecar zone
// maps prune whole blocks before decompression and only the projected
// columns are decoded, so a narrow window over a large store touches
// a fraction of its bytes — the scan report at the end says exactly
// how much was pruned versus read. Timestamps accept RFC 3339 or
// plain dates (2006-01-02, midnight UTC); -until is inclusive.
// -ftype is a comma-separated file-type set; -sha, optional here,
// restricts the window to one sample.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"vtdynamics/internal/core"
	"vtdynamics/internal/family"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

// options are the parsed command-line flags.
type options struct {
	dir    string
	sha    string
	t      int
	timing bool

	// Range mode (engaged when any of these is set): inclusive unix
	// bounds (0 = unbounded) and a comma-joined file-type set.
	since, until int64
	ftype        string
}

func (o *options) rangeMode() bool {
	return o.since != 0 || o.until != 0 || o.ftype != ""
}

// parseWhen accepts RFC 3339 or a plain UTC date.
func parseWhen(s string) (int64, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t.Unix(), nil
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: want RFC 3339 or 2006-01-02", s)
	}
	return t.Unix(), nil
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtquery", flag.ContinueOnError)
	var (
		dir    = fs.String("store", "./vtdata", "store directory")
		sha    = fs.String("sha", "", "sample sha256 (required unless -since/-until/-ftype)")
		t      = fs.Int("t", 5, "labeling threshold for the category/stabilization summary")
		timing = fs.Bool("timing", false, "report cold (disk) and hot (cached) lookup latency")
		since  = fs.String("since", "", "range mode: keep scans at or after this time (RFC 3339 or 2006-01-02)")
		until  = fs.String("until", "", "range mode: keep scans at or before this time (inclusive)")
		ftype  = fs.String("ftype", "", "range mode: comma-separated file types to keep")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	opts := &options{dir: *dir, sha: *sha, t: *t, timing: *timing, ftype: *ftype}
	var err error
	if *since != "" {
		if opts.since, err = parseWhen(*since); err != nil {
			return nil, fmt.Errorf("-since: %w", err)
		}
	}
	if *until != "" {
		if opts.until, err = parseWhen(*until); err != nil {
			return nil, fmt.Errorf("-until: %w", err)
		}
	}
	if opts.since != 0 && opts.until != 0 && opts.until < opts.since {
		return nil, fmt.Errorf("-until %s is before -since %s", *until, *since)
	}
	if !opts.rangeMode() && opts.sha == "" {
		return nil, fmt.Errorf("-sha is required (or use -since/-until/-ftype for a range query)")
	}
	if *t < 1 {
		return nil, fmt.Errorf("bad -t %d: want >= 1", *t)
	}
	return opts, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, so both modes
// are testable end to end.
func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtquery:", err)
		return 1
	}

	st, err := store.Open(opts.dir)
	if err != nil {
		fmt.Fprintln(stderr, "vtquery:", err)
		return 1
	}
	if opts.rangeMode() {
		if err := runRange(st, opts, stdout); err != nil {
			fmt.Fprintln(stderr, "vtquery:", err)
			return 1
		}
		return 0
	}
	if err := runSample(st, opts, stdout); err != nil {
		fmt.Fprintln(stderr, "vtquery:", err)
		return 1
	}
	return 0
}

// runRange executes the pushdown aggregation and prints the window
// summary plus the scan's pruning report.
func runRange(st *store.Store, opts *options, stdout io.Writer) error {
	q := store.Query{
		Since: opts.since,
		Until: opts.until,
		Cols:  store.ColFT | store.ColTime,
	}
	if opts.ftype != "" {
		for _, ft := range strings.Split(opts.ftype, ",") {
			q.FileTypes = append(q.FileTypes, strings.TrimSpace(ft))
		}
	}
	if opts.sha != "" {
		q.SHAs = []string{opts.sha}
	}
	var (
		group store.GroupCountByType
		span  store.FirstLastAgg
	)
	stats, err := st.Scan(q, &store.MultiAgg{Aggs: []store.Agg{&group, &span}})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "range query: %s\n", describeQuery(opts))
	fmt.Fprintf(stdout, "matched %d scans", stats.Rows)
	if span.Rows > 0 {
		fmt.Fprintf(stdout, " from %s to %s",
			time.Unix(span.First, 0).UTC().Format("2006-01-02 15:04"),
			time.Unix(span.Last, 0).UTC().Format("2006-01-02 15:04"))
	}
	fmt.Fprintln(stdout)
	types := make([]string, 0, len(group.Counts))
	for ft := range group.Counts {
		types = append(types, ft)
	}
	sort.Slice(types, func(i, j int) bool {
		if group.Counts[types[i]] != group.Counts[types[j]] {
			return group.Counts[types[i]] > group.Counts[types[j]]
		}
		return types[i] < types[j]
	})
	fmt.Fprintf(stdout, "%-22s %10s\n", "file type", "scans")
	for _, ft := range types {
		name := ft
		if name == "" {
			name = "(none)"
		}
		fmt.Fprintf(stdout, "%-22s %10d\n", name, group.Counts[ft])
	}
	fmt.Fprintf(stdout, "scan: %d/%d blocks pruned (%s), %d scanned, %d KiB gunzipped, %d column segments skipped\n",
		stats.PrunedTotal(), stats.Blocks, describePruned(stats),
		stats.Scanned, stats.CompressedBytes/1024, stats.ColumnsSkipped)
	if stats.FallbackMonths > 0 {
		fmt.Fprintf(stdout, "note: %d unindexed month(s) were streamed in full; run `vtstore reindex`\n", stats.FallbackMonths)
	}
	return nil
}

func describeQuery(opts *options) string {
	var parts []string
	if opts.since != 0 {
		parts = append(parts, "since "+time.Unix(opts.since, 0).UTC().Format("2006-01-02 15:04"))
	}
	if opts.until != 0 {
		parts = append(parts, "until "+time.Unix(opts.until, 0).UTC().Format("2006-01-02 15:04"))
	}
	if opts.ftype != "" {
		parts = append(parts, "ftype "+opts.ftype)
	}
	if opts.sha != "" {
		parts = append(parts, "sha "+opts.sha)
	}
	if len(parts) == 0 {
		return "(all rows)"
	}
	return strings.Join(parts, ", ")
}

func describePruned(stats store.ScanStats) string {
	if stats.PrunedTotal() == 0 {
		return "none"
	}
	reasons := make([]string, 0, len(stats.Pruned))
	for r := range stats.Pruned {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	parts := make([]string, 0, len(reasons))
	for _, r := range reasons {
		parts = append(parts, fmt.Sprintf("%s %d", r, stats.Pruned[r]))
	}
	return strings.Join(parts, ", ")
}

// runSample prints one sample's history and dynamics summary.
func runSample(st *store.Store, opts *options, stdout io.Writer) error {
	coldStart := time.Now()
	h, err := st.Get(opts.sha)
	cold := time.Since(coldStart)
	if err != nil {
		return err
	}
	if opts.timing {
		hotStart := time.Now()
		if _, err := st.Get(opts.sha); err != nil {
			return err
		}
		hot := time.Since(hotStart)
		indexed := "full scan"
		if st.Indexed() {
			indexed = "block index"
		}
		fmt.Fprintf(stdout, "lookup: cold %v (%s), hot %v (cache)\n", cold, indexed, hot)
	}

	fmt.Fprintf(stdout, "sample %s\n", h.Meta.SHA256)
	fmt.Fprintf(stdout, "  type %s, size %d, times_submitted %d\n",
		h.Meta.FileType, h.Meta.Size, h.Meta.TimesSubmitted)
	fmt.Fprintf(stdout, "  first submission %s\n", h.Meta.FirstSubmissionDate.Format("2006-01-02 15:04"))

	series := core.FromHistory(h)
	fmt.Fprintf(stdout, "  scans: %d\n", series.Len())
	for i, r := range h.Reports {
		fmt.Fprintf(stdout, "    %2d  %s  AV-Rank %3d / %d engines\n",
			i+1, r.AnalysisDate.Format("2006-01-02 15:04"), r.AVRank, r.EnginesTotal)
	}

	// Family label from the last scan's detection strings (§3.1's
	// AVClass practice).
	last := h.Reports[len(h.Reports)-1]
	var labels []string
	for _, er := range last.Results {
		if er.Verdict == report.Malicious {
			labels = append(labels, er.Label)
		}
	}
	if v, ok := family.Label(labels, 2); ok {
		fmt.Fprintf(stdout, "  family: %s (%d engines agree)\n", v.Family, v.Engines)
	} else {
		fmt.Fprintln(stdout, "  family: (none / singleton)")
	}

	sum := core.Summarize(h, opts.t)
	fmt.Fprintf(stdout, "  class: %s (Δ = %d, final rank %d, span %.1f d)\n",
		sum.Class, sum.Delta, sum.FinalRank, sum.Span.Hours()/24)
	if series.Len() >= 2 {
		fmt.Fprintf(stdout, "  category at t=%d: %s\n", opts.t, sum.Category)
		if sum.RankStable.Stable {
			fmt.Fprintf(stdout, "  AV-Rank stabilized at scan %d (%.1f days after first scan)\n",
				sum.RankStable.Index+1, sum.RankStable.TimeToStability.Hours()/24)
		} else {
			fmt.Fprintln(stdout, "  AV-Rank not yet stable")
		}
		if sum.LabelStable.Stable {
			fmt.Fprintf(stdout, "  label (t=%d) stabilized at scan %d\n", opts.t, sum.LabelStable.Index+1)
		} else {
			fmt.Fprintf(stdout, "  label (t=%d) not yet stable\n", opts.t)
		}
		fmt.Fprintf(stdout, "  engine flips: %d up, %d down across %d engines\n",
			sum.Flips.Up, sum.Flips.Down, sum.FlippingEngines)
		// Engines that flipped on this sample.
		type flip struct {
			engine string
			counts core.FlipCounts
		}
		var flips []flip
		seen := map[string]bool{}
		for _, r := range h.Reports {
			for _, er := range r.Results {
				if seen[er.Engine] {
					continue
				}
				seen[er.Engine] = true
				fc := core.CountFlips(core.ExtractEngineSeries(h, er.Engine))
				if fc.Flips() > 0 {
					flips = append(flips, flip{er.Engine, fc})
				}
			}
		}
		sort.Slice(flips, func(i, j int) bool {
			if flips[i].counts.Flips() != flips[j].counts.Flips() {
				return flips[i].counts.Flips() > flips[j].counts.Flips()
			}
			return flips[i].engine < flips[j].engine
		})
		fmt.Fprintf(stdout, "  engines that flipped: %d\n", len(flips))
		for i, f := range flips {
			if i == 15 {
				fmt.Fprintf(stdout, "    ... %d more\n", len(flips)-15)
				break
			}
			fmt.Fprintf(stdout, "    %-22s 0→1 ×%d, 1→0 ×%d\n", f.engine, f.counts.Up, f.counts.Down)
		}
	}
	return nil
}
