// Command vtquery inspects one sample's scan history in a collected
// store and prints its dynamics summary: AV-Rank trajectory,
// stable/dynamic class, Δ, stabilization, per-threshold category, and
// the engines that flipped on it.
//
// Usage:
//
//	vtquery -store ./vtdata -sha <sha256> [-t 5] [-timing]
//
// -timing additionally reports the cold and hot Get latency: the
// first lookup seeks only the gzip blocks holding the sample (or
// falls back to a full partition scan when the store predates the
// block-index sidecars), the second is served from the decoded-
// history LRU cache.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"vtdynamics/internal/core"
	"vtdynamics/internal/family"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

// options are the parsed command-line flags.
type options struct {
	dir    string
	sha    string
	t      int
	timing bool
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtquery", flag.ContinueOnError)
	var (
		dir    = fs.String("store", "./vtdata", "store directory")
		sha    = fs.String("sha", "", "sample sha256 (required)")
		t      = fs.Int("t", 5, "labeling threshold for the category/stabilization summary")
		timing = fs.Bool("timing", false, "report cold (disk) and hot (cached) lookup latency")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *sha == "" {
		return nil, fmt.Errorf("-sha is required")
	}
	if *t < 1 {
		return nil, fmt.Errorf("bad -t %d: want >= 1", *t)
	}
	return &options{dir: *dir, sha: *sha, t: *t, timing: *timing}, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fatal(err)
	}

	st, err := store.Open(opts.dir)
	if err != nil {
		fatal(err)
	}
	coldStart := time.Now()
	h, err := st.Get(opts.sha)
	cold := time.Since(coldStart)
	if err != nil {
		fatal(err)
	}
	if opts.timing {
		hotStart := time.Now()
		if _, err := st.Get(opts.sha); err != nil {
			fatal(err)
		}
		hot := time.Since(hotStart)
		indexed := "full scan"
		if st.Indexed() {
			indexed = "block index"
		}
		fmt.Printf("lookup: cold %v (%s), hot %v (cache)\n", cold, indexed, hot)
	}

	fmt.Printf("sample %s\n", h.Meta.SHA256)
	fmt.Printf("  type %s, size %d, times_submitted %d\n",
		h.Meta.FileType, h.Meta.Size, h.Meta.TimesSubmitted)
	fmt.Printf("  first submission %s\n", h.Meta.FirstSubmissionDate.Format("2006-01-02 15:04"))

	series := core.FromHistory(h)
	fmt.Printf("  scans: %d\n", series.Len())
	for i, r := range h.Reports {
		fmt.Printf("    %2d  %s  AV-Rank %3d / %d engines\n",
			i+1, r.AnalysisDate.Format("2006-01-02 15:04"), r.AVRank, r.EnginesTotal)
	}

	// Family label from the last scan's detection strings (§3.1's
	// AVClass practice).
	last := h.Reports[len(h.Reports)-1]
	var labels []string
	for _, er := range last.Results {
		if er.Verdict == report.Malicious {
			labels = append(labels, er.Label)
		}
	}
	if v, ok := family.Label(labels, 2); ok {
		fmt.Printf("  family: %s (%d engines agree)\n", v.Family, v.Engines)
	} else {
		fmt.Println("  family: (none / singleton)")
	}

	sum := core.Summarize(h, opts.t)
	fmt.Printf("  class: %s (Δ = %d, final rank %d, span %.1f d)\n",
		sum.Class, sum.Delta, sum.FinalRank, sum.Span.Hours()/24)
	if series.Len() >= 2 {
		fmt.Printf("  category at t=%d: %s\n", opts.t, sum.Category)
		if sum.RankStable.Stable {
			fmt.Printf("  AV-Rank stabilized at scan %d (%.1f days after first scan)\n",
				sum.RankStable.Index+1, sum.RankStable.TimeToStability.Hours()/24)
		} else {
			fmt.Println("  AV-Rank not yet stable")
		}
		if sum.LabelStable.Stable {
			fmt.Printf("  label (t=%d) stabilized at scan %d\n", opts.t, sum.LabelStable.Index+1)
		} else {
			fmt.Printf("  label (t=%d) not yet stable\n", opts.t)
		}
		fmt.Printf("  engine flips: %d up, %d down across %d engines\n",
			sum.Flips.Up, sum.Flips.Down, sum.FlippingEngines)
		// Engines that flipped on this sample.
		type flip struct {
			engine string
			counts core.FlipCounts
		}
		var flips []flip
		seen := map[string]bool{}
		for _, r := range h.Reports {
			for _, er := range r.Results {
				if seen[er.Engine] {
					continue
				}
				seen[er.Engine] = true
				fc := core.CountFlips(core.ExtractEngineSeries(h, er.Engine))
				if fc.Flips() > 0 {
					flips = append(flips, flip{er.Engine, fc})
				}
			}
		}
		sort.Slice(flips, func(i, j int) bool {
			if flips[i].counts.Flips() != flips[j].counts.Flips() {
				return flips[i].counts.Flips() > flips[j].counts.Flips()
			}
			return flips[i].engine < flips[j].engine
		})
		fmt.Printf("  engines that flipped: %d\n", len(flips))
		for i, f := range flips {
			if i == 15 {
				fmt.Printf("    ... %d more\n", len(flips)-15)
				break
			}
			fmt.Printf("    %-22s 0→1 ×%d, 1→0 ×%d\n", f.engine, f.counts.Up, f.counts.Down)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vtquery:", err)
	os.Exit(1)
}
