package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
	}{
		{"leader ok", []string{"-mode", "leader", "-store", "d"}, false},
		{"follower ok", []string{"-mode", "follower", "-store", "d", "-leader", "http://x"}, false},
		{"follower once", []string{"-mode", "follower", "-store", "d", "-leader", "http://x", "-once"}, false},
		{"missing mode", []string{"-store", "d"}, true},
		{"unknown mode", []string{"-mode", "proxy", "-store", "d"}, true},
		{"missing store", []string{"-mode", "leader"}, true},
		{"follower without leader", []string{"-mode", "follower", "-store", "d"}, true},
		{"leader with -leader", []string{"-mode", "leader", "-store", "d", "-leader", "http://x"}, true},
		{"bad fault rate", []string{"-mode", "leader", "-store", "d", "-fault500", "1.5"}, true},
		{"bad interval", []string{"-mode", "follower", "-store", "d", "-leader", "http://x", "-interval", "-1s"}, true},
		{"stray argument", []string{"-mode", "leader", "-store", "d", "extra"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if (err != nil) != tc.wantErr {
				t.Fatalf("parseFlags(%v) err = %v, wantErr %v", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestParseFlagsCursorDefault(t *testing.T) {
	opts, err := parseFlags([]string{"-mode", "follower", "-store", "rep", "-leader", "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("rep", "sync.cursor"); opts.cursor != want {
		t.Fatalf("cursor = %q, want %q", opts.cursor, want)
	}
	opts, err = parseFlags([]string{"-mode", "follower", "-store", "rep", "-leader", "http://x", "-cursor", "/tmp/c"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cursor != "/tmp/c" {
		t.Fatalf("cursor = %q", opts.cursor)
	}
}

func syncdEnvelope(sha string, at time.Time, rank int) report.Envelope {
	results := []report.EngineResult{
		{Engine: "Avast", Verdict: report.Benign, SignatureVersion: 3},
	}
	for i := 0; i < rank; i++ {
		results = append(results, report.EngineResult{
			Engine:  fmt.Sprintf("Det%02d", i),
			Verdict: report.Malicious, Label: "Trojan.Gen", SignatureVersion: 1,
		})
	}
	return report.Envelope{
		Meta: report.SampleMeta{
			SHA256: sha, FileType: "Win32 EXE", Size: 2048,
			FirstSubmissionDate: at, LastAnalysisDate: at,
			LastSubmissionDate: at, TimesSubmitted: 1,
		},
		Scan: report.ScanReport{
			SHA256: sha, FileType: "Win32 EXE", AnalysisDate: at,
			Results: results, AVRank: rank, EnginesTotal: rank + 1,
		},
	}
}

// TestLeaderFollowerEndToEnd drives the two run() modes against each
// other in-process: a leader on a random port, a follower -once, then
// a file-for-file hash comparison of the two directories.
func TestLeaderFollowerEndToEnd(t *testing.T) {
	leaderDir := t.TempDir()
	st, err := store.Open(leaderDir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		if err := st.Put(syncdEnvelope(fmt.Sprintf("e2e%03d", i), base.Add(time.Duration(i)*time.Hour), i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	leaderOut := &lockedBuffer{}
	leaderDone := make(chan int, 1)
	go func() {
		leaderDone <- run([]string{"-mode", "leader", "-store", leaderDir, "-addr", "127.0.0.1:0",
			"-fault503", "0.2", "-seed", "7"}, leaderOut, os.Stderr)
	}()

	// Wait for the readiness line to learn the port.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("leader never announced; output %q", leaderOut.String())
		}
		out := leaderOut.String()
		if i := strings.Index(out, " on "); i >= 0 {
			if j := strings.Index(out[i+4:], "\n"); j >= 0 {
				addr = strings.TrimSpace(out[i+4 : i+4+j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	followerDir := t.TempDir()
	var followerOut, followerErr bytes.Buffer
	code := run([]string{"-mode", "follower", "-store", followerDir,
		"-leader", "http://" + addr, "-once"}, &followerOut, &followerErr)
	if code != 0 {
		t.Fatalf("follower exit %d: %s", code, followerErr.String())
	}
	if !strings.Contains(followerOut.String(), "caught up") {
		t.Fatalf("follower output %q", followerOut.String())
	}

	// Byte parity, ignoring the follower's cursor file.
	want := hashDir(t, leaderDir)
	got := hashDir(t, followerDir)
	delete(got, "sync.cursor")
	if len(want) != len(got) {
		t.Fatalf("leader has %d files, follower %d", len(want), len(got))
	}
	for name, sum := range want {
		if got[name] != sum {
			t.Fatalf("file %s differs after e2e sync", name)
		}
	}

	// A second -once pass is a no-op that still succeeds (resumable).
	code = run([]string{"-mode", "follower", "-store", followerDir,
		"-leader", "http://" + addr, "-once"}, &followerOut, &followerErr)
	if code != 0 {
		t.Fatalf("second follower pass exit %d: %s", code, followerErr.String())
	}

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-leaderDone:
		if code != 0 {
			t.Fatalf("leader exit %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader did not shut down on interrupt")
	}
}

// lockedBuffer serializes the leader goroutine's writes against the
// test's readiness polling.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func hashDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(b))
	}
	return out
}
