// Command vtsyncd replicates a report store between machines.
//
// Leader mode serves a store's replication feed over HTTP:
//
//	vtsyncd -mode leader -store ./vtdata -addr :8844
//
// Follower mode pulls a leader until the local replica is
// byte-identical, keeping a durable cursor so a restarted follower
// resumes where it stopped:
//
//	vtsyncd -mode follower -store ./replica -leader http://host:8844 -once
//
// Without -once the follower re-syncs every -interval until
// interrupted. The leader can inject transient faults (-fault500,
// -fault503, -seed) to harden follower deployments in testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/store"
	vtsync "vtdynamics/internal/sync"
	"vtdynamics/internal/vtapi"
)

// options are the parsed command-line flags.
type options struct {
	mode     string
	dir      string
	addr     string
	leader   string
	cursor   string
	once     bool
	interval time.Duration
	fault500 float64
	fault503 float64
	seed     int64
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtsyncd", flag.ContinueOnError)
	mode := fs.String("mode", "", "leader or follower")
	dir := fs.String("store", "", "store directory (leader: source, follower: replica)")
	addr := fs.String("addr", ":8844", "leader listen address")
	leader := fs.String("leader", "", "leader base URL (follower mode)")
	cursor := fs.String("cursor", "", "follower cursor file (default <store>/sync.cursor)")
	once := fs.Bool("once", false, "follower: one catch-up pass, then exit")
	interval := fs.Duration("interval", 30*time.Second, "follower: delay between catch-up passes")
	fault500 := fs.Float64("fault500", 0, "leader: injected 500 probability")
	fault503 := fs.Float64("fault503", 0, "leader: injected 503 probability")
	seed := fs.Int64("seed", 1, "leader: fault injection seed")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *dir == "" {
		return nil, errors.New("-store is required")
	}
	switch *mode {
	case "leader":
		if *leader != "" {
			return nil, errors.New("-leader is a follower flag")
		}
	case "follower":
		if *leader == "" {
			return nil, errors.New("follower mode requires -leader URL")
		}
		if *interval <= 0 {
			return nil, fmt.Errorf("bad -interval %v: want > 0", *interval)
		}
	default:
		return nil, fmt.Errorf("unknown -mode %q (leader, follower)", *mode)
	}
	for _, p := range []float64{*fault500, *fault503} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("bad fault probability %v: want [0, 1]", p)
		}
	}
	c := *cursor
	if c == "" {
		c = filepath.Join(*dir, "sync.cursor")
	}
	return &options{
		mode: *mode, dir: *dir, addr: *addr, leader: *leader, cursor: c,
		once: *once, interval: *interval,
		fault500: *fault500, fault503: *fault503, seed: *seed,
	}, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, mirroring the
// other commands so flag handling and mode dispatch are testable.
func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtsyncd:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	st, err := store.Open(opts.dir)
	if err != nil {
		fmt.Fprintln(stderr, "vtsyncd:", err)
		return 1
	}

	switch opts.mode {
	case "leader":
		err = runLeader(ctx, opts, st, stdout)
	case "follower":
		err = runFollower(ctx, opts, st, stdout)
	}
	if s := obs.Default().Summary(); s != "" {
		fmt.Fprintln(stderr, "vtsyncd metrics:", s)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "vtsyncd:", err)
		return 1
	}
	return 0
}

// runLeader serves until the context is cancelled. It listens before
// announcing, so "serving" on stdout means the port is live —
// scripts wait on that line.
func runLeader(ctx context.Context, opts *options, st *store.Store, stdout io.Writer) error {
	var h http.Handler = vtsync.NewLeader(st, nil)
	if opts.fault500 > 0 || opts.fault503 > 0 {
		h = vtapi.FaultMiddleware(vtapi.FaultConfig{
			Error500Rate: opts.fault500,
			Error503Rate: opts.fault503,
			Seed:         opts.seed,
		}, nil, h)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "vtsyncd: leader serving %s on %s\n", opts.dir, ln.Addr())
	srv := &http.Server{Handler: h}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	case err := <-done:
		return err
	}
}

// runFollower catches up once or on an interval. Every pass ends in a
// verified, byte-identical replica of the leader's state at that
// moment; the durable cursor makes restarts resume, not rewind.
func runFollower(ctx context.Context, opts *options, st *store.Store, stdout io.Writer) error {
	f := vtsync.NewFollower(st, opts.leader, nil)
	f.CursorPath = opts.cursor
	for {
		stats, err := f.CatchUp(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "vtsyncd: caught up in %d rounds: %d blocks, %d bytes, %d retries\n",
			stats.Rounds, stats.BlocksApplied, stats.BytesApplied, stats.Retries)
		if opts.once {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(opts.interval):
		}
	}
}
