package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    options
	}{
		{
			name: "default subcommand is stats",
			args: nil,
			want: options{dir: "./vtdata", workers: 0, cmd: "stats"},
		},
		{
			name: "explicit subcommand and flags",
			args: []string{"-store", "/tmp/s", "-workers", "4", "verify"},
			want: options{dir: "/tmp/s", workers: 4, cmd: "verify"},
		},
		{
			name: "list",
			args: []string{"list"},
			want: options{dir: "./vtdata", cmd: "list"},
		},
		{
			name: "reindex",
			args: []string{"reindex"},
			want: options{dir: "./vtdata", cmd: "reindex"},
		},
		{
			name: "migrate",
			args: []string{"migrate"},
			want: options{dir: "./vtdata", cmd: "migrate"},
		},
		{
			name: "migrate with store flag",
			args: []string{"-store", "/tmp/s", "migrate"},
			want: options{dir: "/tmp/s", cmd: "migrate"},
		},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantErr: true},
		{name: "two subcommands", args: []string{"stats", "verify"}, wantErr: true},
		{name: "migrate rejects extra argument", args: []string{"migrate", "2021-05"}, wantErr: true},
		{name: "negative workers", args: []string{"-workers", "-1"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// sidecar mirrors the store's sidecar JSON schema so tests can tamper
// with individual block entries while keeping the file loadable.
type sidecar struct {
	FileSize int64            `json:"file_size"`
	Blocks   []sidecarBlock   `json:"blocks"`
	Postings map[string][]int `json:"postings"`
}

type sidecarBlock struct {
	O int64 `json:"o"`
	L int64 `json:"l"`
	N int   `json:"n"`
	R int64 `json:"r"`
	V int   `json:"v,omitempty"`
}

// buildVerifyStore writes a small closed store with several blocks.
func buildVerifyStore(t *testing.T, dir string) {
	t.Helper()
	s, err := store.Open(dir, store.WithBlockSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 5, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 24; i++ {
		sha := fmt.Sprintf("verify%02d", i)
		env := report.Envelope{
			Meta: report.SampleMeta{
				SHA256:              sha,
				FileType:            "Win32 EXE",
				Size:                2048,
				FirstSubmissionDate: base,
				LastAnalysisDate:    base,
				LastSubmissionDate:  base,
				TimesSubmitted:      1,
			},
			Scan: report.ScanReport{
				SHA256:       sha,
				FileType:     "Win32 EXE",
				AnalysisDate: base.Add(time.Duration(i) * time.Hour),
				AVRank:       1,
				EnginesTotal: 2,
				Results: []report.EngineResult{
					{Engine: "Avast", Verdict: report.Malicious, Label: "Trojan.Gen", SignatureVersion: 1},
					{Engine: "BitDefender", Verdict: report.Benign, SignatureVersion: 2},
				},
			},
		}
		if err := s.Put(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyExitStatus pins the satellite contract: `vtstore verify`
// exits non-zero whenever a sidecar block entry disagrees with the
// partition payload, so sync parity checks can shell out to it.
func TestVerifyExitStatus(t *testing.T) {
	cases := []struct {
		name     string
		corrupt  func(t *testing.T, sc *sidecar)
		wantCode int
	}{
		{
			name:     "clean store",
			wantCode: 0,
		},
		{
			name: "inflated block row count",
			corrupt: func(t *testing.T, sc *sidecar) {
				sc.Blocks[0].N++
			},
			wantCode: 1,
		},
		{
			name: "wrong block raw bytes",
			corrupt: func(t *testing.T, sc *sidecar) {
				sc.Blocks[0].R += 17
			},
			wantCode: 1,
		},
		{
			name: "lying block version",
			corrupt: func(t *testing.T, sc *sidecar) {
				sc.Blocks[0].V = 0 // claims v1, payload is v2
			},
			wantCode: 1,
		},
		{
			name: "posting dropped",
			corrupt: func(t *testing.T, sc *sidecar) {
				for sha := range sc.Postings {
					delete(sc.Postings, sha)
					return
				}
				t.Fatal("no postings to drop")
			},
			wantCode: 1,
		},
		{
			name: "posting for a sample the block does not hold",
			corrupt: func(t *testing.T, sc *sidecar) {
				sc.Postings["phantomsample"] = []int{0}
			},
			wantCode: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildVerifyStore(t, dir)
			idxPath := filepath.Join(dir, "scans-2021-05.idx")
			if tc.corrupt != nil {
				b, err := os.ReadFile(idxPath)
				if err != nil {
					t.Fatal(err)
				}
				var sc sidecar
				if err := json.Unmarshal(b, &sc); err != nil {
					t.Fatal(err)
				}
				if len(sc.Blocks) < 2 {
					t.Fatalf("fixture too small: %d blocks", len(sc.Blocks))
				}
				tc.corrupt(t, &sc)
				out, err := json.Marshal(sc)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(idxPath, out, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			var stdout, stderr bytes.Buffer
			code := run([]string{"-store", dir, "verify"}, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantCode != 0 && !strings.Contains(stderr.String(), "FAILED") {
				t.Fatalf("failure not reported on stderr: %s", stderr.String())
			}
		})
	}
}

// TestVerifyCorruptPayloadExitStatus flips a byte inside a committed
// block: the row pass hits the gzip CRC failure and verify must exit
// non-zero.
func TestVerifyCorruptPayloadExitStatus(t *testing.T) {
	dir := t.TempDir()
	buildVerifyStore(t, dir)
	part := filepath.Join(dir, "scans-2021-05.jsonl.gz")
	b, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(part, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-store", dir, "verify"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}
}
