package main

import (
	"errors"
	"flag"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    options
	}{
		{
			name: "default subcommand is stats",
			args: nil,
			want: options{dir: "./vtdata", workers: 0, cmd: "stats"},
		},
		{
			name: "explicit subcommand and flags",
			args: []string{"-store", "/tmp/s", "-workers", "4", "verify"},
			want: options{dir: "/tmp/s", workers: 4, cmd: "verify"},
		},
		{
			name: "list",
			args: []string{"list"},
			want: options{dir: "./vtdata", cmd: "list"},
		},
		{
			name: "reindex",
			args: []string{"reindex"},
			want: options{dir: "./vtdata", cmd: "reindex"},
		},
		{
			name: "migrate",
			args: []string{"migrate"},
			want: options{dir: "./vtdata", cmd: "migrate"},
		},
		{
			name: "migrate with store flag",
			args: []string{"-store", "/tmp/s", "migrate"},
			want: options{dir: "/tmp/s", cmd: "migrate"},
		},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantErr: true},
		{name: "two subcommands", args: []string{"stats", "verify"}, wantErr: true},
		{name: "migrate rejects extra argument", args: []string{"migrate", "2021-05"}, wantErr: true},
		{name: "negative workers", args: []string{"-workers", "-1"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}
