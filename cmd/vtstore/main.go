// Command vtstore inspects and verifies a collected report store.
//
// Usage:
//
//	vtstore -store ./vtdata stats      per-month and per-type accounting
//	vtstore -store ./vtdata verify     re-read and validate every row
//	vtstore -store ./vtdata list       list stored sample hashes
//	vtstore -store ./vtdata reindex    (re)build block-index sidecars
//	vtstore -store ./vtdata migrate    rewrite v1 partitions to block format v2
//
// stats and verify fan partition blocks across -workers goroutines
// (default: all cores); verify also reports the sidecar version
// census (zone-mapped v3 vs legacy v2 vs missing). reindex upgrades
// sidecars in place — pre-sidecar stores gain the indexed
// random-access read path, pre-zone sidecars gain block zone maps —
// skipping partitions that are already current (idempotent); it also
// heals sidecars invalidated by a crash. migrate
// upgrades partitions to the columnar v2 block format, verifying the
// rewrite row-for-row against the source before replacing anything;
// months already in v2 are skipped, so re-running it is a no-op.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vtdynamics/internal/obs"
	"vtdynamics/internal/store"
)

// options are the parsed command-line flags and subcommand.
type options struct {
	dir     string
	workers int
	cmd     string
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtstore", flag.ContinueOnError)
	dir := fs.String("store", "./vtdata", "store directory")
	workers := fs.Int("workers", 0, "parallel partition readers for stats/verify (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "stats"
	}
	switch cmd {
	case "stats", "verify", "list", "reindex", "migrate":
	default:
		return nil, fmt.Errorf("unknown subcommand %q (stats, verify, list, reindex, migrate)", cmd)
	}
	if fs.NArg() > 1 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(1))
	}
	if *workers < 0 {
		return nil, fmt.Errorf("bad -workers %d: want >= 0", *workers)
	}
	return &options{dir: *dir, workers: *workers, cmd: cmd}, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code instead of
// os.Exit, so the verify exit-status contract (non-zero on any row or
// sidecar disagreement) is testable. Sync parity checks shell out to
// `vtstore verify` and rely on that status.
func run(args []string, stdout, stderr io.Writer) int {
	opts, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "vtstore:", err)
		return 1
	}

	st, err := store.Open(opts.dir)
	if err != nil {
		fmt.Fprintln(stderr, "vtstore:", err)
		return 1
	}

	switch opts.cmd {
	case "stats":
		fmt.Fprintf(stdout, "samples: %d\n", st.NumSamples())
		fmt.Fprintf(stdout, "%-10s %10s %14s %14s %8s\n", "month", "reports", "stored", "raw", "ratio")
		total := st.TotalStats()
		for _, month := range st.Months() {
			ps := st.Stats(month)
			fmt.Fprintf(stdout, "%-10s %10d %14d %14d %8.2f\n",
				month, ps.Reports, ps.StoredBytes, ps.RawBytes, ps.CompressionRatio())
		}
		fmt.Fprintf(stdout, "%-10s %10d %14d %14d %8.2f\n",
			"total", total.Reports, total.StoredBytes, total.RawBytes, total.CompressionRatio())

		byType, err := st.StatsByTypeWorkers(opts.workers)
		if err != nil {
			fmt.Fprintln(stderr, "vtstore:", err)
			return 1
		}
		types := make([]string, 0, len(byType))
		for ft := range byType {
			types = append(types, ft)
		}
		sort.Slice(types, func(i, j int) bool {
			return byType[types[i]].Samples > byType[types[j]].Samples
		})
		fmt.Fprintf(stdout, "\n%-22s %10s %10s\n", "file type", "samples", "reports")
		for _, ft := range types {
			ts := byType[ft]
			fmt.Fprintf(stdout, "%-22s %10d %10d\n", ft, ts.Samples, ts.Reports)
		}

	case "verify":
		n, err := st.VerifyWorkers(opts.workers)
		if err != nil {
			fmt.Fprintf(stderr, "vtstore: verification FAILED after %d rows: %v\n", n, err)
			return 1
		}
		fmt.Fprintf(stdout, "verified %d rows across %d partitions: OK\n", n, len(st.Months()))
		// Sidecar census: which partitions scan with zone pruning (v3),
		// which still scan un-pruned (v2 legacy entries), which have no
		// usable sidecar at all.
		counts := map[int]int{}
		for _, ver := range st.SidecarVersions() {
			counts[ver]++
		}
		fmt.Fprintf(stdout, "sidecars: %d zone-mapped (v3), %d legacy (v2), %d missing\n",
			counts[3], counts[2], counts[0])
		if counts[2]+counts[0] > 0 {
			fmt.Fprintln(stdout, "run `vtstore reindex` to upgrade; scans over non-v3 partitions cannot prune blocks")
		}

	case "list":
		for _, sha := range st.SampleHashes() {
			meta, _ := st.Meta(sha)
			fmt.Fprintf(stdout, "%s  %-20s %d submissions\n", sha, meta.FileType, meta.TimesSubmitted)
		}

	case "reindex":
		rs, err := st.ReindexWithStats()
		if err != nil {
			fmt.Fprintln(stderr, "vtstore:", err)
			return 1
		}
		for _, month := range rs.Upgraded {
			fmt.Fprintf(stdout, "reindexed %s\n", month)
		}
		fmt.Fprintf(stdout, "reindex: %d partitions upgraded, %d already zone-mapped\n",
			len(rs.Upgraded), len(rs.Skipped))

	case "migrate":
		ms, err := st.Migrate()
		if err != nil {
			fmt.Fprintln(stderr, "vtstore:", err)
			return 1
		}
		for _, month := range ms.Migrated {
			fmt.Fprintf(stdout, "migrated %s to v2\n", month)
		}
		fmt.Fprintf(stdout, "migrate: %d partitions rewritten to v2, %d already current\n",
			len(ms.Migrated), len(ms.Skipped))
	}
	if s := obs.Default().Summary(); s != "" {
		fmt.Fprintln(stderr, "vtstore metrics:", s)
	}
	return 0
}
