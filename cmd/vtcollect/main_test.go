package main

import (
	"errors"
	"flag"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.api != "http://127.0.0.1:8099" || o.dir != "./vtdata" {
					t.Errorf("defaults = %+v", o)
				}
				if o.interval != time.Minute || o.workers != 1 || o.metrics != 0 {
					t.Errorf("defaults = %+v", o)
				}
				if !o.from.Equal(time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)) {
					t.Errorf("default from = %v", o.from)
				}
				if !o.to.Equal(time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)) {
					t.Errorf("default to = %v", o.to)
				}
			},
		},
		{
			name: "everything set",
			args: []string{"-api", "http://x:1", "-store", "/tmp/s", "-from", "2021-06-01",
				"-to", "2021-07-01", "-interval", "5m", "-apikey", "k", "-workers", "8", "-metrics", "10s"},
			check: func(t *testing.T, o *options) {
				if o.api != "http://x:1" || o.dir != "/tmp/s" || o.apiKey != "k" {
					t.Errorf("parsed = %+v", o)
				}
				if o.interval != 5*time.Minute || o.workers != 8 || o.metrics != 10*time.Second {
					t.Errorf("parsed = %+v", o)
				}
			},
		},
		{name: "bad from", args: []string{"-from", "yesterday"}, wantErr: true},
		{name: "bad to", args: []string{"-to", "2022-13-01"}, wantErr: true},
		{name: "from after to", args: []string{"-from", "2022-07-01", "-to", "2021-05-01"}, wantErr: true},
		{name: "zero interval", args: []string{"-interval", "0s"}, wantErr: true},
		{name: "zero workers", args: []string{"-workers", "0"}, wantErr: true},
		{name: "stray positional", args: []string{"extra"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, opts)
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}
