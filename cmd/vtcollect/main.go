// Command vtcollect is the paper's data collector (§4.1): it polls a
// VT-style feed endpoint every interval and stores every returned
// scan report into the compressed monthly store.
//
// Usage:
//
//	vtcollect -api http://127.0.0.1:8099 -store ./data \
//	          -from 2021-05-01 -to 2022-07-01 [-interval 1m] [-workers 8]
//
// On completion it prints the collection statistics and the per-month
// store accounting (the Table 2 analogue). With -metrics DUR the
// collector also dumps its live metrics (collector, client, and store
// series from internal/obs) to stderr every DUR while running.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"vtdynamics/internal/feed"
	"vtdynamics/internal/obs"
	"vtdynamics/internal/report"
	"vtdynamics/internal/store"
	"vtdynamics/internal/vtclient"
)

// options are the parsed command-line flags.
type options struct {
	api      string
	dir      string
	from, to time.Time
	interval time.Duration
	apiKey   string
	workers  int
	metrics  time.Duration
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtcollect", flag.ContinueOnError)
	var (
		api      = fs.String("api", "http://127.0.0.1:8099", "VT API base URL")
		dir      = fs.String("store", "./vtdata", "store directory")
		fromStr  = fs.String("from", "2021-05-01", "collection start (YYYY-MM-DD)")
		toStr    = fs.String("to", "2022-07-01", "collection end (YYYY-MM-DD)")
		interval = fs.Duration("interval", time.Minute, "poll interval")
		apiKey   = fs.String("apikey", "", "API key (the feed requires a premium-tier key when the server enforces auth)")
		workers  = fs.Int("workers", 1, "concurrent feed fetches (commits stay in slice order; 1 = the paper's serial loop)")
		metrics  = fs.Duration("metrics", 0, "dump live metrics to stderr at this period (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	from, err := time.Parse("2006-01-02", *fromStr)
	if err != nil {
		return nil, fmt.Errorf("bad -from: %w", err)
	}
	to, err := time.Parse("2006-01-02", *toStr)
	if err != nil {
		return nil, fmt.Errorf("bad -to: %w", err)
	}
	if !from.Before(to) {
		return nil, fmt.Errorf("-from %s is not before -to %s", *fromStr, *toStr)
	}
	if *interval <= 0 {
		return nil, fmt.Errorf("bad -interval %v: want > 0", *interval)
	}
	if *workers < 1 {
		return nil, fmt.Errorf("bad -workers %d: want >= 1", *workers)
	}
	return &options{
		api:      *api,
		dir:      *dir,
		from:     from.UTC(),
		to:       to.UTC(),
		interval: *interval,
		apiKey:   *apiKey,
		workers:  *workers,
		metrics:  *metrics,
	}, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fatal(err)
	}

	st, err := store.Open(opts.dir)
	if err != nil {
		fatal(err)
	}
	var copts []vtclient.Option
	if opts.apiKey != "" {
		copts = append(copts, vtclient.WithAPIKey(opts.apiKey))
	}
	client := vtclient.New(opts.api, copts...)

	// The store commits whole slices at once (BatchSink); -workers
	// overlaps the HTTP fetch latency while commits and checkpoints
	// stay in slice order.
	collector := feed.NewCollector(
		feed.SourceFunc(func(ctx context.Context, a, b time.Time) ([]report.Envelope, error) {
			return client.FeedBetween(ctx, a, b)
		}),
		st,
	)
	collector.Interval = opts.interval
	collector.Workers = opts.workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if opts.metrics > 0 {
		go func() {
			ticker := time.NewTicker(opts.metrics)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					fmt.Fprintln(os.Stderr, "vtcollect metrics:", obs.Default().Summary())
				}
			}
		}()
	}

	// Checkpointed collection: an interrupted campaign resumes at the
	// first unfetched slice on the next invocation. The store is a
	// feed.Syncer, so the collector cuts its gzip blocks to disk
	// before each checkpoint advances — the cursor never claims
	// slices that could be lost in a crash, and unlike a full Flush
	// the partition writers stay open across checkpoints.
	cursor := &feed.FileCursor{Path: filepath.Join(opts.dir, "collect.cursor")}
	stats, err := collector.RunResumable(ctx, opts.from, opts.to, cursor)
	if cerr := st.Close(); cerr != nil && err == nil {
		err = cerr
	}
	fmt.Printf("polls %d, envelopes %d, distinct samples %d\n",
		stats.Polls, stats.Envelopes, stats.Samples)
	for _, month := range st.Months() {
		ps := st.Stats(month)
		fmt.Printf("%s  reports %8d  stored %10d B  raw %12d B  (%.2fx)\n",
			month, ps.Reports, ps.StoredBytes, ps.RawBytes, ps.CompressionRatio())
	}
	if opts.metrics > 0 {
		fmt.Fprintln(os.Stderr, "vtcollect metrics:", obs.Default().Summary())
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vtcollect:", err)
	os.Exit(1)
}
