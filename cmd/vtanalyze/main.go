// Command vtanalyze runs the paper's experiments against the
// simulated pipeline and prints each table/figure analogue.
//
// Usage:
//
//	vtanalyze [flags] [experiment ...]
//
// With no experiment arguments every experiment runs in paper order.
// Experiment names:
//
//	table1 table2 table3                      dataset & API semantics
//	storescan                                 store-derived census (pushdown scan)
//	fig1 fig2 fig3 fig4 fig5 fig6 fig7        landscape & dynamics
//	fig8 obs8 fig9                            aggregation & stabilization
//	fig10 sec71 sec55                         engine flips & causes
//	fig11 fig12                               engine correlation
//	strategies latency kappa predict family   extensions
//	ablation-rescan ablation-coupling         ablations
//	ablation-window ablation-corr
//
// Example:
//
//	vtanalyze -dynamics 60000 fig8 fig9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vtdynamics/internal/experiments"
	"vtdynamics/internal/obs"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "simulation seed (equal seeds reproduce results)")
		population = flag.Int("population", 400000, "population size for Table 3 / Figure 1")
		dynamics   = flag.Int("dynamics", 60000, "dataset-S size for dynamics experiments")
		service    = flag.Int("service", 8000, "workload size for the service/feed/store pipeline (Table 2)")
		corrScans  = flag.Int("corr-scans", 40000, "scan rows for engine-correlation matrices")
		workers    = flag.Int("workers", 0, "scan parallelism (0 = GOMAXPROCS)")
		storeDir   = flag.String("store", "", "directory for the Table 2 store (default: temp dir)")
		csvDir     = flag.String("csv", "", "also export plot-ready CSV series into this directory")
	)
	flag.Parse()

	runner, err := experiments.NewRunner(experiments.Config{
		Seed:             *seed,
		PopulationSize:   *population,
		DynamicsSize:     *dynamics,
		ServiceSize:      *service,
		CorrelationScans: *corrScans,
		Workers:          *workers,
	})
	if err != nil {
		fatal(err)
	}

	var csvTables []experiments.CSVTable
	exportCSV := func(tables []experiments.CSVTable) {
		if *csvDir != "" {
			csvTables = append(csvTables, tables...)
		}
	}

	run := map[string]func() error{
		"table1": func() error {
			res, err := runner.Table1APIUpdateRules()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"table2": func() error {
			dir := *storeDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "vtstore")
				if err != nil {
					return err
				}
				defer os.RemoveAll(tmp)
				dir = tmp
			}
			res, err := runner.Table2DatasetOverview(dir)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"storescan": func() error {
			dir := *storeDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "vtstore")
				if err != nil {
					return err
				}
				defer os.RemoveAll(tmp)
				dir = tmp
			}
			res, err := runner.StoreScanCensus(dir)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"table3": func() error {
			res, err := runner.Table3FileTypeDist()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"fig1": func() error {
			res, err := runner.Figure1ReportsCDF()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig2": func() error {
			res, err := runner.Figure2StableDynamic()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig3": func() error {
			res, err := runner.Figure3StableAVRank()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig4": func() error {
			res, err := runner.Figure4StableTimeSpan()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig5": func() error {
			res, err := runner.Figure5DeltaCDF()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig6": func() error {
			res, err := runner.Figure6DeltaByType()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig7": func() error {
			res, err := runner.Figure7DiffVsInterval()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig8": func() error {
			all, pe, err := runner.Figure8Categories()
			if err != nil {
				return err
			}
			all.Render(os.Stdout)
			pe.Render(os.Stdout)
			exportCSV(all.CSVTables())
			exportCSV(pe.CSVTables())
			return nil
		},
		"fig9": func() error {
			a, err := runner.Figure9LabelStability(false)
			if err != nil {
				return err
			}
			a.Render(os.Stdout)
			exportCSV(a.CSVTables())
			b, err := runner.Figure9LabelStability(true)
			if err != nil {
				return err
			}
			b.Render(os.Stdout)
			exportCSV(b.CSVTables())
			return nil
		},
		"obs8": func() error {
			res, err := runner.Observation8Stability()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig10": func() error {
			res, err := runner.Figure10FlipRatios()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig11": func() error {
			res, err := runner.Figure11Correlation()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"fig12": func() error {
			res, err := runner.Figure12PerTypeGroups()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			exportCSV(res.CSVTables())
			return nil
		},
		"sec71": func() error {
			res, err := runner.Section71Flips()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"sec55": func() error {
			res, err := runner.Section55FlipCauses()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"family": func() error {
			res, err := runner.FamilyStability()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"predict": func() error {
			res, err := runner.LabelPrediction()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"latency": func() error {
			res, err := runner.EngineLatencyProfiles()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"kappa": func() error {
			res, err := runner.KappaRobustness()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"strategies": func() error {
			res, err := runner.StrategyStability()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"ablation-rescan": func() error {
			res, err := runner.AblationRescanPolicy(2000)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"ablation-coupling": func() error {
			res, err := runner.AblationUpdateCoupling(1500)
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"ablation-window": func() error {
			res, err := runner.AblationMeasurementWindow()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
		"ablation-corr": func() error {
			res, err := runner.AblationCorrelationThreshold()
			if err != nil {
				return err
			}
			res.Render(os.Stdout)
			return nil
		},
	}

	order := []string{"table1", "table2", "storescan", "table3", "fig1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "obs8", "fig9", "fig10", "sec71", "sec55",
		"fig11", "fig12", "strategies", "latency", "kappa", "predict", "family",
		"ablation-rescan", "ablation-coupling", "ablation-window", "ablation-corr"}

	selected := flag.Args()
	if len(selected) == 0 {
		selected = order
	}
	start := time.Now()
	for _, name := range selected {
		f, ok := run[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (known: %v)", name, order))
		}
		fmt.Printf("=== %s (t=%.1fs) ===\n", name, time.Since(start).Seconds())
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *csvDir != "" && len(csvTables) > 0 {
		if err := experiments.WriteCSVDir(*csvDir, csvTables); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d CSV series to %s\n", len(csvTables), *csvDir)
	}
	fmt.Printf("completed %d experiments in %.1fs (seed %d)\n",
		len(selected), time.Since(start).Seconds(), *seed)
	if s := obs.Default().Summary(); s != "" {
		fmt.Fprintln(os.Stderr, "vtanalyze metrics:", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vtanalyze:", err)
	os.Exit(1)
}
