// Command vtsimd serves the simulated VirusTotal API over HTTP.
//
// Usage:
//
//	vtsimd [-addr :8099] [-seed 1] [-accel 0] [-shards 32]
//
// By default the service runs on the real clock with an engine
// window spanning a year around now. With -accel N > 0 the service
// runs on a virtual clock starting at the paper's collection start
// and advancing N virtual seconds per wall second, so a 14-month
// campaign can be replayed quickly against live HTTP clients.
//
// Endpoints (see internal/vtapi):
//
//	POST /api/v3/files
//	GET  /api/v3/files/{id}
//	POST /api/v3/files/{id}/analyse
//	GET  /api/v3/feed/reports?from=&to=
//	GET  /healthz
//	GET  /metricsz                 (Prometheus text; ?format=json)
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtsim"
)

// options are the parsed command-line flags.
type options struct {
	addr       string
	seed       int64
	shards     int
	accel      float64
	quiet      bool
	publicKey  string
	premiumKey string
	fault500   float64
	fault503   float64
}

// parseFlags parses and validates args (without the program name).
func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("vtsimd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8099", "listen address")
		seed       = fs.Int64("seed", 1, "simulation seed")
		shards     = fs.Int("shards", vtsim.DefaultShards, "sample-state shard count (rounded up to a power of two)")
		accel      = fs.Float64("accel", 0, "virtual-clock acceleration (0 = real clock)")
		quiet      = fs.Bool("quiet", false, "disable request logging")
		publicKey  = fs.String("public-key", "", "enable auth: API key on the public tier (4 req/min, 500/day, no feed)")
		premiumKey = fs.String("premium-key", "", "enable auth: API key on the premium tier (unlimited, feed access)")
		fault500   = fs.Float64("fault-500", 0, "inject 500s at this rate (chaos testing for clients)")
		fault503   = fs.Float64("fault-503", 0, "inject 503s with Retry-After at this rate")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *shards < 1 {
		return nil, fmt.Errorf("bad -shards %d: want >= 1", *shards)
	}
	if *accel < 0 {
		return nil, fmt.Errorf("bad -accel %v: want >= 0", *accel)
	}
	for name, rate := range map[string]float64{"-fault-500": *fault500, "-fault-503": *fault503} {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("bad %s %v: want a probability in [0, 1]", name, rate)
		}
	}
	return &options{
		addr:       *addr,
		seed:       *seed,
		shards:     *shards,
		accel:      *accel,
		quiet:      *quiet,
		publicKey:  *publicKey,
		premiumKey: *premiumKey,
		fault500:   *fault500,
		fault503:   *fault503,
	}, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "vtsimd:", err)
		os.Exit(1)
	}

	var clock simclock.Clock
	var start, end time.Time
	if opts.accel > 0 {
		start, end = simclock.CollectionStart, simclock.CollectionEnd
		sim := simclock.NewSim(start)
		clock = sim
		go func() {
			ticker := time.NewTicker(100 * time.Millisecond)
			defer ticker.Stop()
			for range ticker.C {
				sim.Advance(time.Duration(opts.accel * float64(100*time.Millisecond)))
			}
		}()
	} else {
		now := time.Now().UTC()
		start, end = now.AddDate(-1, 0, 0), now.AddDate(1, 0, 0)
		clock = simclock.Real{}
	}

	set, err := engine.NewSet(engine.DefaultRoster(), opts.seed, start, end)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtsimd:", err)
		os.Exit(1)
	}
	svc := vtsim.NewService(set, clock, vtsim.WithShards(opts.shards))

	var logger *log.Logger
	if !opts.quiet {
		logger = log.New(os.Stderr, "vtsimd ", log.LstdFlags)
	}
	var apiOpts []vtapi.Option
	if opts.fault500 > 0 || opts.fault503 > 0 {
		apiOpts = append(apiOpts, vtapi.WithFaults(vtapi.FaultConfig{
			Error500Rate: opts.fault500,
			Error503Rate: opts.fault503,
			Seed:         opts.seed,
		}))
		log.Printf("vtsimd: fault injection enabled (500: %.2f, 503: %.2f)", opts.fault500, opts.fault503)
	}
	if opts.publicKey != "" || opts.premiumKey != "" {
		keys := map[string]vtapi.Tier{}
		if opts.publicKey != "" {
			keys[opts.publicKey] = vtapi.PublicTier
		}
		if opts.premiumKey != "" {
			keys[opts.premiumKey] = vtapi.PremiumTier
		}
		apiOpts = append(apiOpts, vtapi.WithAuth(clock, keys))
		log.Printf("vtsimd: auth enabled (%d keys)", len(keys))
	}
	srv := &http.Server{
		Addr:              opts.addr,
		Handler:           vtapi.NewServer(svc, logger, apiOpts...),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("vtsimd: %d engines, window %s .. %s, listening on %s (metrics at /metricsz)",
		set.Len(), start.Format("2006-01-02"), end.Format("2006-01-02"), opts.addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal("vtsimd:", err)
	}
}
