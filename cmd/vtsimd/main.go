// Command vtsimd serves the simulated VirusTotal API over HTTP.
//
// Usage:
//
//	vtsimd [-addr :8099] [-seed 1] [-accel 0] [-shards 32]
//
// By default the service runs on the real clock with an engine
// window spanning a year around now. With -accel N > 0 the service
// runs on a virtual clock starting at the paper's collection start
// and advancing N virtual seconds per wall second, so a 14-month
// campaign can be replayed quickly against live HTTP clients.
//
// Endpoints (see internal/vtapi):
//
//	POST /api/v3/files
//	GET  /api/v3/files/{id}
//	POST /api/v3/files/{id}/analyse
//	GET  /api/v3/feed/reports?from=&to=
//	GET  /healthz
//	GET  /metricsz                 (Prometheus text; ?format=json)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"vtdynamics/internal/engine"
	"vtdynamics/internal/simclock"
	"vtdynamics/internal/vtapi"
	"vtdynamics/internal/vtsim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8099", "listen address")
		seed       = flag.Int64("seed", 1, "simulation seed")
		shards     = flag.Int("shards", vtsim.DefaultShards, "sample-state shard count (rounded up to a power of two)")
		accel      = flag.Float64("accel", 0, "virtual-clock acceleration (0 = real clock)")
		quiet      = flag.Bool("quiet", false, "disable request logging")
		publicKey  = flag.String("public-key", "", "enable auth: API key on the public tier (4 req/min, 500/day, no feed)")
		premiumKey = flag.String("premium-key", "", "enable auth: API key on the premium tier (unlimited, feed access)")
		fault500   = flag.Float64("fault-500", 0, "inject 500s at this rate (chaos testing for clients)")
		fault503   = flag.Float64("fault-503", 0, "inject 503s with Retry-After at this rate")
	)
	flag.Parse()

	var clock simclock.Clock
	var start, end time.Time
	if *accel > 0 {
		start, end = simclock.CollectionStart, simclock.CollectionEnd
		sim := simclock.NewSim(start)
		clock = sim
		go func() {
			ticker := time.NewTicker(100 * time.Millisecond)
			defer ticker.Stop()
			for range ticker.C {
				sim.Advance(time.Duration(*accel * float64(100*time.Millisecond)))
			}
		}()
	} else {
		now := time.Now().UTC()
		start, end = now.AddDate(-1, 0, 0), now.AddDate(1, 0, 0)
		clock = simclock.Real{}
	}

	set, err := engine.NewSet(engine.DefaultRoster(), *seed, start, end)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vtsimd:", err)
		os.Exit(1)
	}
	svc := vtsim.NewService(set, clock, vtsim.WithShards(*shards))

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "vtsimd ", log.LstdFlags)
	}
	var opts []vtapi.Option
	if *fault500 > 0 || *fault503 > 0 {
		opts = append(opts, vtapi.WithFaults(vtapi.FaultConfig{
			Error500Rate: *fault500,
			Error503Rate: *fault503,
			Seed:         *seed,
		}))
		log.Printf("vtsimd: fault injection enabled (500: %.2f, 503: %.2f)", *fault500, *fault503)
	}
	if *publicKey != "" || *premiumKey != "" {
		keys := map[string]vtapi.Tier{}
		if *publicKey != "" {
			keys[*publicKey] = vtapi.PublicTier
		}
		if *premiumKey != "" {
			keys[*premiumKey] = vtapi.PremiumTier
		}
		opts = append(opts, vtapi.WithAuth(clock, keys))
		log.Printf("vtsimd: auth enabled (%d keys)", len(keys))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           vtapi.NewServer(svc, logger, opts...),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("vtsimd: %d engines, window %s .. %s, listening on %s (metrics at /metricsz)",
		set.Len(), start.Format("2006-01-02"), end.Format("2006-01-02"), *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal("vtsimd:", err)
	}
}
