package main

import (
	"errors"
	"flag"
	"testing"

	"vtdynamics/internal/vtsim"
)

func TestParseFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    options
	}{
		{
			name: "defaults",
			args: nil,
			want: options{addr: ":8099", seed: 1, shards: vtsim.DefaultShards},
		},
		{
			name: "everything set",
			args: []string{"-addr", "127.0.0.1:0", "-seed", "9", "-shards", "8", "-accel", "600",
				"-quiet", "-public-key", "pub", "-premium-key", "prem",
				"-fault-500", "0.1", "-fault-503", "0.2"},
			want: options{addr: "127.0.0.1:0", seed: 9, shards: 8, accel: 600, quiet: true,
				publicKey: "pub", premiumKey: "prem", fault500: 0.1, fault503: 0.2},
		},
		{name: "zero shards", args: []string{"-shards", "0"}, wantErr: true},
		{name: "negative accel", args: []string{"-accel", "-1"}, wantErr: true},
		{name: "fault rate over 1", args: []string{"-fault-500", "1.5"}, wantErr: true},
		{name: "negative fault rate", args: []string{"-fault-503", "-0.1"}, wantErr: true},
		{name: "stray positional", args: []string{"extra"}, wantErr: true},
		{name: "unknown flag", args: []string{"-bogus"}, wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts, err := parseFlags(c.args)
			if c.wantErr {
				if err == nil {
					t.Fatalf("parse accepted %v: %+v", c.args, opts)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *opts != c.want {
				t.Fatalf("parsed %+v, want %+v", *opts, c.want)
			}
		})
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}
