// Engine-correlation analysis for a chosen file type — the §7.2 /
// Appendix 2 methodology. Builds the scans × engines verdict matrix,
// computes pairwise Spearman correlations, and prints the strongly
// correlated engine groups, which should not be double-counted when
// aggregating verdicts.
//
// Run with:
//
//	go run ./examples/enginecorr [-type "Win32 EXE"]
package main

import (
	"flag"
	"fmt"
	"log"

	"vtdynamics"
)

func main() {
	fileType := flag.String("type", vtdynamics.FileTypeWin32EXE, "file type to analyze")
	samplesN := flag.Int("samples", 6000, "workload size")
	flag.Parse()

	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed:         11,
		NumSamples:   *samplesN,
		MultiOnly:    true,
		TopTypesOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	matrix := vtdynamics.NewVerdictMatrix(sim.EngineNames())
	for _, s := range samples {
		if s.FileType != *fileType {
			continue
		}
		matrix.AddHistory(sim.ScanSample(s))
	}
	fmt.Printf("%s: %d scans from %d engines\n", *fileType, matrix.Rows(), len(sim.EngineNames()))
	if matrix.Rows() < 100 {
		log.Fatalf("too few scans for %q; raise -samples", *fileType)
	}

	pairs, err := matrix.Correlations()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nstrong correlations (Spearman ρ > 0.8):")
	shown := 0
	for _, p := range pairs {
		if p.Rho > 0.8 {
			fmt.Printf("  %-22s %-22s ρ=%.4f (p=%.2g)\n", p.A, p.B, p.Rho, p.P)
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (none)")
	}

	fmt.Println("\nengine groups (connected components):")
	for i, g := range vtdynamics.StrongGroups(pairs, 0.8) {
		if len(g) < 2 {
			continue
		}
		fmt.Printf("  Group %d: %v\n", i+1, g)
	}
	fmt.Println("\nEngines in one group effectively cast one vote; weight them accordingly.")
}
