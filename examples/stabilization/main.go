// When can you trust a label? — the §6 stabilization measurement.
// Scans a fresh dynamic corpus and reports how long AV-Ranks and
// aggregated labels take to settle, for fluctuation ranges r = 0..5
// and a sweep of thresholds.
//
// Run with:
//
//	go run ./examples/stabilization
package main

import (
	"fmt"
	"log"

	"vtdynamics"
)

func main() {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed:         3,
		NumSamples:   6000,
		MultiOnly:    true,
		TopTypesOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	var corpus []vtdynamics.RankSeries
	for _, s := range samples {
		if !s.Fresh || len(s.ScanTimes) < 2 {
			continue
		}
		rs := vtdynamics.FromHistory(sim.ScanSample(s))
		if rs.Delta() > 0 {
			corpus = append(corpus, rs)
		}
	}
	fmt.Printf("dynamic samples: %d\n\n", len(corpus))

	fmt.Println("AV-Rank stabilization by fluctuation range r:")
	fmt.Printf("%-4s %-10s %-14s\n", "r", "stable", "<=30d of those")
	for r := 0; r <= 5; r++ {
		stable, within30 := 0, 0
		for _, s := range corpus {
			res := s.StabilizeWithin(r)
			if !res.Stable {
				continue
			}
			stable++
			if res.TimeToStability.Hours() <= 30*24 {
				within30++
			}
		}
		frac := float64(stable) / float64(len(corpus))
		w30 := 0.0
		if stable > 0 {
			w30 = float64(within30) / float64(stable)
		}
		fmt.Printf("%-4d %-10.2f %-14.2f\n", r, frac*100, w30*100)
	}

	fmt.Println("\nlabel stabilization by threshold:")
	fmt.Printf("%-4s %-10s %-12s\n", "t", "stable", "mean days")
	for _, t := range []int{2, 5, 10, 20, 40} {
		stable := 0
		var days float64
		for _, s := range corpus {
			res := s.LabelStabilization(t)
			if res.Stable {
				stable++
				days += res.TimeToStability.Hours() / 24
			}
		}
		mean := 0.0
		if stable > 0 {
			mean = days / float64(stable)
		}
		fmt.Printf("%-4d %-10.2f %-12.2f\n", t, float64(stable)/float64(len(corpus))*100, mean)
	}
	fmt.Println("\nRule of thumb from the paper: wait ~30 days before trusting a fresh sample's label.")
}
