// Learned engine weighting — the §3.1 ML line in practice. Trains a
// logistic-regression aggregator on first-scan verdict vectors,
// compares it with unweighted threshold rules, and prints the learned
// per-engine weights: correlated engines (§7.2) visibly split the
// weight one independent engine earns.
//
// Run with:
//
//	go run ./examples/weighting
package main

import (
	"fmt"
	"log"
	"sort"

	"vtdynamics"
)

func main() {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	feat := vtdynamics.NewFeaturizer(sim.EngineNames())

	// Build a labeled corpus: first-scan verdict vector → latent
	// ground truth (which the simulator knows; in reality you'd use
	// stabilized labels per §6 as the target).
	build := func(seed int64, n int) []vtdynamics.PredictExample {
		samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
			Seed: seed, NumSamples: n, TopTypesOnly: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		out := make([]vtdynamics.PredictExample, 0, len(samples))
		for _, s := range samples {
			h := sim.ScanSample(s)
			out = append(out, vtdynamics.PredictExample{
				X: feat.Features(h.Reports[0]),
				Y: s.Malicious,
			})
		}
		return out
	}
	train := build(100, 8000)
	test := build(101, 3000)

	model, err := vtdynamics.TrainPredictor(train, vtdynamics.PredictConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %-10s %-10s %-8s\n", "aggregator", "accuracy", "precision", "recall")
	m := model.Evaluate(test)
	fmt.Printf("%-16s %-10.4f %-10.4f %-8.4f\n", "logistic", m.Accuracy(), m.Precision(), m.Recall())
	for _, t := range []int{1, 2, 5, 10} {
		b := vtdynamics.PredictThresholdBaseline(test, t)
		fmt.Printf("threshold(%-2d)    %-10.4f %-10.4f %-8.4f\n", t, b.Accuracy(), b.Precision(), b.Recall())
	}

	// Weight inspection: sort engines by learned weight.
	type ew struct {
		engine string
		weight float64
	}
	weights := make([]ew, feat.Dim())
	for j, e := range feat.Engines() {
		weights[j] = ew{e, model.Weights[j]}
	}
	sort.Slice(weights, func(i, j int) bool { return weights[i].weight > weights[j].weight })
	fmt.Println("\nmost trusted engines (highest learned weight):")
	for _, w := range weights[:8] {
		fmt.Printf("  %-22s %+.3f\n", w.engine, w.weight)
	}
	fmt.Println("\nleast weighted engines:")
	for _, w := range weights[len(weights)-8:] {
		fmt.Printf("  %-22s %+.3f\n", w.engine, w.weight)
	}
	fmt.Println("\nNote how members of correlated groups (Avast/AVG, the BitDefender")
	fmt.Println("family, Paloalto/APEX) each carry less weight than comparable")
	fmt.Println("independent engines: the model discovers §7.2's redundancy.")
}
