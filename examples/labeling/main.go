// Threshold selection on a fresh corpus — the §5.4 methodology in
// miniature. Generates a fresh multi-scan workload, classifies every
// sample as white/black/gray per threshold, and prints the gray share
// so you can pick a threshold whose labels tolerate VT's dynamics.
//
// Run with:
//
//	go run ./examples/labeling
package main

import (
	"fmt"
	"log"

	"vtdynamics"
)

func main() {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A fresh, multi-scan, top-20-type corpus (dataset-S style).
	samples, err := vtdynamics.GenerateWorkload(vtdynamics.WorkloadConfig{
		Seed:         7,
		NumSamples:   4000,
		MultiOnly:    true,
		TopTypesOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Scan every sample and keep the dynamic ones — stable samples
	// are labeled consistently at any threshold and cannot go gray.
	var series []vtdynamics.RankSeries
	for _, s := range samples {
		if !s.Fresh || len(s.ScanTimes) < 2 {
			continue
		}
		h := sim.ScanSample(s)
		rs := vtdynamics.FromHistory(h)
		if rs.Delta() > 0 {
			series = append(series, rs)
		}
	}
	fmt.Printf("dynamic samples: %d\n\n", len(series))

	thresholds := []int{1, 2, 5, 10, 15, 20, 25, 30, 40, 50}
	counts := vtdynamics.CategorySweep(series, thresholds)
	fmt.Printf("%-4s %-8s %-8s %-8s\n", "t", "white", "black", "gray")
	best, bestGray := 0, 1.0
	for _, c := range counts {
		fmt.Printf("%-4d %-8.2f %-8.2f %-8.2f\n",
			c.Threshold, c.WhiteFraction()*100, c.BlackFraction()*100, c.GrayFraction()*100)
		if g := c.GrayFraction(); g < bestGray {
			bestGray, best = g, c.Threshold
		}
	}
	fmt.Printf("\nlowest gray share: t=%d (%.2f%% of samples could flip label)\n",
		best, bestGray*100)
	fmt.Println("(the paper recommends t in 1-11 or 28-50 overall, 1-24 for PE files)")
}
