// Quickstart: spin up the simulated VirusTotal service, submit a
// file, watch its AV-Rank evolve over rescans, and aggregate a label
// — the end-to-end loop every study in the paper begins with.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"vtdynamics"
)

func main() {
	sim, err := vtdynamics.NewSimulation(vtdynamics.SimConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	svc, clock := sim.NewService()

	// Upload a fresh malicious PE file. In the simulator the latent
	// attributes stand in for the file bytes the real service would
	// receive.
	const sha = "3b4d6e1f0a92c85577e02d46b8cb16deadbeef0123456789aabbccddeeff0011"
	env, err := svc.Upload(vtdynamics.UploadRequest{
		SHA256:        sha,
		FileType:      vtdynamics.FileTypeWin32EXE,
		Size:          1 << 20,
		Malicious:     true,
		Detectability: 0.85,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0: AV-Rank %d of %d engines\n", env.Scan.AVRank, env.Scan.EnginesTotal)

	// Rescan over the following weeks: engine latency and signature
	// updates move the rank (the paper's §5 dynamics).
	for _, days := range []int{1, 3, 7, 14, 30, 60} {
		clock.Set(vtdynamics.CollectionStart.Add(time.Duration(days) * 24 * time.Hour))
		env, err = svc.Rescan(sha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %2d: AV-Rank %d\n", days, env.Scan.AVRank)
	}

	// Pull the full history and analyze its dynamics.
	history, err := svc.History(sha)
	if err != nil {
		log.Fatal(err)
	}
	series := vtdynamics.FromHistory(history)
	fmt.Printf("\ndynamics class: %s, Δ = %d\n", series.Classify(), series.Delta())
	if res := series.StabilizeWithin(0); res.Stable {
		fmt.Printf("AV-Rank stabilized at scan %d (%.0f days in)\n",
			res.Index+1, res.TimeToStability.Hours()/24)
	}

	// Aggregate with a threshold, the standard practice (§3.1).
	threshold, err := vtdynamics.NewThreshold(5)
	if err != nil {
		log.Fatal(err)
	}
	labels := vtdynamics.LabelHistory(threshold, history)
	fmt.Printf("labels under %s: ", threshold.Name())
	for _, m := range labels {
		if m {
			fmt.Print("M")
		} else {
			fmt.Print("B")
		}
	}
	fmt.Println()
}
